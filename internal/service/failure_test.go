package service

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"
)

// Failure-mode coverage for the pooled transport: peer disconnect
// mid-instance, reconnect after a connection failure, dial retry against a
// late listener, the slow-peer shed/block policies, and graceful drain
// with in-flight instances. All of these run under -race in CI.

// TestServicePeerDisconnectMidInstance kills one process while a batch of
// instances is in flight. The survivors are n−f = 4 of 5, which is
// exactly the quorum the §3.2 algorithm needs, so every surviving process
// must still decide every instance; the dead process's results surface as
// decisions (if it finished first) or ErrServiceClosed.
func TestServicePeerDisconnectMidInstance(t *testing.T) {
	const n, instances = 5, 8
	svcs := startMesh(t, n, nil)
	rng := rand.New(rand.NewSource(19))

	chans := make(map[uint64][]<-chan Result, instances)
	for id := uint64(1); id <= instances; id++ {
		chans[id] = proposeAll(t, svcs, id, randomInputs(rng, n, 2))
	}
	if err := svcs[n-1].Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for id, chs := range chans {
		for i, ch := range chs {
			res := collect(t, ch, 30*time.Second)
			if i == n-1 {
				if res.Err != nil && !errors.Is(res.Err, ErrServiceClosed) {
					t.Errorf("closed process, instance %d: %v", id, res.Err)
				}
				continue
			}
			if res.Err != nil {
				t.Errorf("survivor %d, instance %d: %v", i, id, res.Err)
			}
		}
	}
	for i := 0; i < n-1; i++ {
		if err := svcs[i].Err(); err != nil {
			t.Errorf("survivor %d background error: %v", i, err)
		}
	}
}

// TestServiceReconnect force-fails one established connection and checks
// the dialing side re-establishes it (Stats.Reconnects) and the mesh then
// carries instances normally.
func TestServiceReconnect(t *testing.T) {
	const n = 5
	svcs := startMesh(t, n, nil)

	// svcs[1] dialed svcs[0] (higher id dials lower), so it owns the
	// redial. Yank the socket out from under the link.
	p := svcs[1].peerAt(0)
	p.mu.Lock()
	conn := p.conn
	p.mu.Unlock()
	if conn == nil {
		t.Fatal("link 1→0 has no connection after Establish")
	}
	_ = conn.Close()

	deadline := time.Now().Add(10 * time.Second)
	for svcs[1].Stats().Reconnects == 0 {
		if time.Now().After(deadline) {
			t.Fatal("link 1→0 never reconnected")
		}
		time.Sleep(10 * time.Millisecond)
	}

	rng := rand.New(rand.NewSource(23))
	inputs := randomInputs(rng, n, 2)
	for i, ch := range proposeAll(t, svcs, 1, inputs) {
		if res := collect(t, ch, 30*time.Second); res.Err != nil {
			t.Fatalf("post-reconnect instance, process %d: %v", i, res.Err)
		}
	}
	for i, s := range svcs {
		if err := s.Err(); err != nil {
			t.Errorf("service %d background error: %v", i, err)
		}
	}
}

// TestServiceDialRetryLateListener starts four of five processes first:
// their dials to the missing lowest-id process must retry with backoff
// until its listener finally appears, then Establish completes everywhere.
func TestServiceDialRetryLateListener(t *testing.T) {
	const n = 5
	// Reserve an address for process 0 without keeping the listener open.
	rsv, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("reserve: %v", err)
	}
	addr0 := rsv.Addr().String()
	_ = rsv.Close()

	svcs := make([]*Service, n)
	for i := 1; i < n; i++ {
		cfg := Config{Node: testNodeConfig(n), ID: i, Addrs: loopbackTemplate(n), Seed: int64(i + 1)}
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("New(%d): %v", i, err)
		}
		t.Cleanup(func() { _ = s.Close() })
		svcs[i] = s
	}
	final := make([]string, n)
	final[0] = addr0
	for i := 1; i < n; i++ {
		final[i] = svcs[i].Addr()
	}

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 1; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = svcs[i].Establish(context.Background(), final)
		}()
	}
	time.Sleep(150 * time.Millisecond) // let the dials fail and back off

	cfg := Config{Node: testNodeConfig(n), ID: 0, Addrs: append([]string(nil), final...), Seed: 1}
	s0, err := New(cfg)
	if err != nil {
		t.Fatalf("New(0): %v", err)
	}
	t.Cleanup(func() { _ = s0.Close() })
	svcs[0] = s0
	errs[0] = s0.Establish(context.Background(), final)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("Establish(%d): %v", i, err)
		}
	}

	rng := rand.New(rand.NewSource(29))
	for i, ch := range proposeAll(t, svcs, 1, randomInputs(rng, n, 2)) {
		if res := collect(t, ch, 30*time.Second); res.Err != nil {
			t.Fatalf("process %d: %v", i, res.Err)
		}
	}
}

// newBenchLink builds a detached peer link for white-box policy tests: no
// writer goroutine runs, so the outbox never drains.
func newBenchLink(policy Policy, depth int) (*Service, *peerLink) {
	svc := &Service{
		cfg:  Config{SlowPeer: policy, OutboxDepth: depth},
		stop: make(chan struct{}),
	}
	return svc, newPeerLink(svc, 1, "detached")
}

func fill(p *peerLink) {
	for i := 0; i < cap(p.outbox); i++ {
		buf := leaseFrame()
		*buf = append(*buf, 0)
		p.outbox <- buf
	}
}

// TestSlowPeerShedPolicy: a full outbox under ShedSlowPeer drops the frame
// immediately and counts it.
func TestSlowPeerShedPolicy(t *testing.T) {
	svc, p := newBenchLink(ShedSlowPeer, 4)
	fill(p)
	buf := leaseFrame()
	*buf = append(*buf, 0)
	p.enqueue(buf)
	if got := svc.ctr.sheds.Load(); got != 1 {
		t.Fatalf("sheds = %d, want 1", got)
	}
	if got := len(p.outbox); got != 4 {
		t.Fatalf("outbox len = %d, want 4", got)
	}
}

// TestSlowPeerBlockPolicy: a full outbox under BlockSlowPeer blocks the
// sender while the peer is connected (backpressure), resumes when space
// frees, and sheds (as WriteDrops) once the peer is disconnected —
// blocking on a crashed peer would stall the shard forever.
func TestSlowPeerBlockPolicy(t *testing.T) {
	svc, p := newBenchLink(BlockSlowPeer, 4)
	c1, c2 := net.Pipe()
	defer func() { _ = c1.Close(); _ = c2.Close() }()
	p.mu.Lock()
	p.conn = c1 // connected, but no read/write loops — pure policy test
	p.mu.Unlock()

	fill(p)
	done := make(chan struct{})
	go func() {
		buf := leaseFrame()
		*buf = append(*buf, 0)
		p.enqueue(buf)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("enqueue returned with a full outbox on a connected peer")
	case <-time.After(50 * time.Millisecond):
	}
	releaseFrame(<-p.outbox) // make room: the blocked sender must proceed
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("enqueue still blocked after outbox space freed")
	}

	// Disconnect the peer: further sends on a full outbox must shed.
	p.mu.Lock()
	p.conn = nil
	p.mu.Unlock()
	buf := leaseFrame()
	*buf = append(*buf, 0)
	p.enqueue(buf)
	if got := svc.ctr.writeDrops.Load(); got != 1 {
		t.Fatalf("writeDrops = %d, want 1", got)
	}
	if got := svc.ctr.sheds.Load(); got != 0 {
		t.Fatalf("sheds = %d, want 0 under block policy", got)
	}
}

// TestServiceShedPolicyEndToEnd runs a mesh configured with ShedSlowPeer
// under light load: nothing should actually shed, and every instance
// still decides — the policy changes overload behavior, not the happy
// path.
func TestServiceShedPolicyEndToEnd(t *testing.T) {
	const n, instances = 5, 6
	svcs := startMesh(t, n, func(_ int, cfg *Config) { cfg.SlowPeer = ShedSlowPeer })
	rng := rand.New(rand.NewSource(31))
	for id := uint64(1); id <= instances; id++ {
		for i, ch := range proposeAll(t, svcs, id, randomInputs(rng, n, 2)) {
			if res := collect(t, ch, 30*time.Second); res.Err != nil {
				t.Fatalf("instance %d process %d: %v", id, i, res.Err)
			}
		}
	}
}

// TestServiceDrainInFlight drains a process with instances in flight:
// Drain must wait for them, refuse new proposals, and announce the drain
// to peers (goodbye), which stops them from redialing the drained process
// after it closes.
func TestServiceDrainInFlight(t *testing.T) {
	const n, instances = 5, 6
	svcs := startMesh(t, n, nil)
	rng := rand.New(rand.NewSource(37))
	chans := make([][]<-chan Result, 0, instances)
	for id := uint64(1); id <= instances; id++ {
		chans = append(chans, proposeAll(t, svcs, id, randomInputs(rng, n, 2)))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svcs[0].Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if got := svcs[0].Stats().ActiveInstances; got != 0 {
		t.Fatalf("ActiveInstances = %d after Drain", got)
	}
	if _, err := svcs[0].Propose(99, randomInputs(rng, n, 2)[0]); !errors.Is(err, ErrDraining) {
		t.Fatalf("Propose after Drain: %v, want ErrDraining", err)
	}
	// Every in-flight instance finished everywhere (Drain waits locally;
	// the peers' copies decide on their own).
	for id, chs := range chans {
		for i, ch := range chs {
			if res := collect(t, ch, 30*time.Second); res.Err != nil {
				t.Errorf("instance %d process %d: %v", id+1, i, res.Err)
			}
		}
	}
	// Goodbye reached the peers: the dialing sides mark the link and will
	// not redial once the drained process goes away.
	deadline := time.Now().Add(10 * time.Second)
	for {
		p := svcs[1].peerAt(0)
		p.mu.Lock()
		bye := p.goodbye
		p.mu.Unlock()
		if bye {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("peer 1 never saw process 0's goodbye")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := svcs[0].Close(); err != nil {
		t.Fatalf("Close after Drain: %v", err)
	}
	time.Sleep(100 * time.Millisecond)
	p := svcs[1].peerAt(0)
	p.mu.Lock()
	redialing := p.redialing
	p.mu.Unlock()
	if redialing {
		t.Error("peer 1 is redialing a drained process")
	}
	if got := svcs[1].Stats().Reconnects; got != 0 {
		t.Errorf("peer 1 reconnected %d times to a drained process", got)
	}
}
