package service

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/hull"
)

// startChaosMesh builds an n-process mesh with one chaos.Injector per
// process wired in as its Transport (manual fault control unless a
// scenario is given).
func startChaosMesh(t *testing.T, n int, scn *chaos.Scenario, mut func(id int, cfg *Config)) ([]*Service, []*chaos.Injector) {
	t.Helper()
	injs := make([]*chaos.Injector, n)
	for i := range injs {
		inj, err := chaos.NewInjector(scn, n, i)
		if err != nil {
			t.Fatalf("injector %d: %v", i, err)
		}
		injs[i] = inj
		t.Cleanup(inj.Stop)
	}
	svcs := startMesh(t, n, func(id int, cfg *Config) {
		cfg.Transport = injs[id]
		if mut != nil {
			mut(id, cfg)
		}
	})
	return svcs, injs
}

// awaitStat polls until pred holds on the service's stats or the deadline
// passes.
func awaitStat(t *testing.T, s *Service, what string, within time.Duration, pred func(Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		if pred(s.Stats()) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s not reached within %v: %+v", what, within, s.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServicePartitionHeal is the partition-then-heal e2e: process 0 is
// fully partitioned (conns severed, dials refused) before an instance is
// proposed, the n−f survivors decide it anyway, and after the heal the
// rejoining process catches up from the survivors' lingering instances
// and decides the same valid way.
func TestServicePartitionHeal(t *testing.T) {
	const n = 5
	svcs, injs := startChaosMesh(t, n, nil, func(_ int, cfg *Config) {
		cfg.InstanceTimeout = 30 * time.Second
		cfg.MaxDialBackoff = 150 * time.Millisecond
	})
	rng := rand.New(rand.NewSource(21))
	inputs := randomInputs(rng, n, 2)

	groups := [][]int{{0}, {1, 2, 3, 4}}
	for _, inj := range injs {
		inj.Partition(groups)
	}
	chans := proposeAll(t, svcs, 1, inputs)

	// Survivors hold exactly n−f processes and must decide without 0.
	for i := 1; i < n; i++ {
		res := collect(t, chans[i], 30*time.Second)
		if res.Err != nil {
			t.Fatalf("survivor %d: %v", i, res.Err)
		}
		if in, err := hull.Contains(inputs, res.Decision, 1e-9); err != nil || !in {
			t.Fatalf("survivor %d: decision %v outside hull (err %v)", i, res.Decision, err)
		}
	}
	// The severed links climb the health ladder: survivors' redials to 0
	// are refused until they suspect it.
	awaitStat(t, svcs[1], "suspicion of partitioned peer", 20*time.Second, func(st Stats) bool {
		return st.DialFailures > 0 && st.SuspectedPeers > 0
	})

	for _, inj := range injs {
		inj.HealAll()
	}
	// After the heal the rejoiner is served by lingering instances.
	res := collect(t, chans[0], 30*time.Second)
	if res.Err != nil {
		t.Fatalf("rejoiner: %v", res.Err)
	}
	if in, err := hull.Contains(inputs, res.Decision, 1e-9); err != nil || !in {
		t.Fatalf("rejoiner: decision %v outside hull (err %v)", res.Decision, err)
	}
	awaitStat(t, svcs[1], "reconnect and suspicion clear", 20*time.Second, func(st Stats) bool {
		return st.Reconnects > 0 && st.SuspectedPeers == 0
	})
	for i, s := range svcs {
		if err := s.Err(); err != nil {
			t.Errorf("service %d structural error: %v", i, err)
		}
	}
}

// TestServiceCrashRestart is the crash-restart e2e: the highest-id
// process is closed mid-service, the survivors keep deciding new
// instances at exactly n−f, and a fresh process restarted on the same
// address rejoins the mesh and decides subsequent instances with
// everyone.
func TestServiceCrashRestart(t *testing.T) {
	const n = 5
	svcs := startMesh(t, n, func(_ int, cfg *Config) {
		cfg.MaxDialBackoff = 150 * time.Millisecond
	})
	rng := rand.New(rand.NewSource(31))
	addrs := make([]string, n)
	for i, s := range svcs {
		addrs[i] = s.Addr()
	}

	inputs := randomInputs(rng, n, 2)
	for i, ch := range proposeAll(t, svcs, 1, inputs) {
		if res := collect(t, ch, 30*time.Second); res.Err != nil {
			t.Fatalf("healthy mesh, process %d: %v", i, res.Err)
		}
	}

	crashed := svcs[n-1]
	_ = crashed.Close()

	// Survivors decide with the crashed process dark (n−f quorum).
	inputs2 := randomInputs(rng, n, 2)
	var chans []<-chan Result
	for i := 0; i < n-1; i++ {
		ch, err := svcs[i].Propose(2, inputs2[i])
		if err != nil {
			t.Fatalf("survivor Propose(%d): %v", i, err)
		}
		chans = append(chans, ch)
	}
	for i, ch := range chans {
		res := collect(t, ch, 30*time.Second)
		if res.Err != nil {
			t.Fatalf("survivor %d during crash: %v", i, res.Err)
		}
		if in, err := hull.Contains(inputs2[:n-1], res.Decision, 1e-9); err != nil || !in {
			t.Fatalf("survivor %d: decision %v outside survivor hull (err %v)", i, res.Decision, err)
		}
	}

	// Restart on the same address; the restarted process dials every
	// lower id, so Establish completing means the mesh is whole again.
	cfg := Config{
		Node:           testNodeConfig(n),
		ID:             n - 1,
		Addrs:          addrs,
		Seed:           99,
		MaxDialBackoff: 150 * time.Millisecond,
	}
	reborn, err := New(cfg)
	if err != nil {
		t.Fatalf("restart New: %v", err)
	}
	t.Cleanup(func() { _ = reborn.Close() })
	if err := reborn.Establish(context.Background(), addrs); err != nil {
		t.Fatalf("restart Establish: %v", err)
	}
	svcs[n-1] = reborn

	inputs3 := randomInputs(rng, n, 2)
	for i, ch := range proposeAll(t, svcs, 3, inputs3) {
		res := collect(t, ch, 30*time.Second)
		if res.Err != nil {
			t.Fatalf("post-restart process %d: %v", i, res.Err)
		}
		if in, err := hull.Contains(inputs3, res.Decision, 1e-9); err != nil || !in {
			t.Fatalf("post-restart %d: decision %v outside hull (err %v)", i, res.Decision, err)
		}
	}
	for i, s := range svcs {
		if err := s.Err(); err != nil {
			t.Errorf("service %d structural error: %v", i, err)
		}
	}
}

// TestServiceCorruptionTolerated runs a mesh where every frame from
// process 0 to process 1 has a byte flipped: frames that still parse act
// as Byzantine values from one process (tolerated at f=1), frames that
// don't count as read errors and recycle the conn — and none of it may
// poison Err() or validity.
func TestServiceCorruptionTolerated(t *testing.T) {
	const n = 5
	scn := &chaos.Scenario{
		Name:  "corrupt-0-to-1",
		Seed:  5,
		Links: []chaos.LinkFault{{From: 0, To: 1, Corrupt: 1}},
	}
	svcs, _ := startChaosMesh(t, n, scn, func(_ int, cfg *Config) {
		cfg.MaxDialBackoff = 100 * time.Millisecond
	})
	rng := rand.New(rand.NewSource(41))
	inputs := randomInputs(rng, n, 2)
	for i, ch := range proposeAll(t, svcs, 1, inputs) {
		res := collect(t, ch, 30*time.Second)
		if res.Err != nil {
			t.Fatalf("process %d: %v", i, res.Err)
		}
		if in, err := hull.Contains(inputs, res.Decision, 1e-9); err != nil || !in {
			t.Fatalf("process %d: decision %v outside hull (err %v)", i, res.Decision, err)
		}
	}
	for i, s := range svcs {
		if err := s.Err(); err != nil {
			t.Errorf("service %d structural error from injected corruption: %v", i, err)
		}
	}
}

// TestServiceSuspicionBackoffLadder drives the health ladder directly: a
// closed peer accumulates dial failures into suspicion, and a restart on
// the same address clears it through a successful reconnect.
func TestServiceSuspicionBackoffLadder(t *testing.T) {
	const n = 5
	svcs := startMesh(t, n, func(_ int, cfg *Config) {
		cfg.DialBackoff = 10 * time.Millisecond
		cfg.MaxDialBackoff = 80 * time.Millisecond
	})
	addrs := make([]string, n)
	for i, s := range svcs {
		addrs[i] = s.Addr()
	}
	_ = svcs[0].Close() // lowest id: every survivor owns redialing to it

	for i := 1; i < n; i++ {
		awaitStat(t, svcs[i], "suspicion of crashed peer", 20*time.Second, func(st Stats) bool {
			return st.SuspectedPeers >= 1 && st.DialFailures >= 3
		})
	}

	cfg := Config{
		Node:           testNodeConfig(n),
		ID:             0,
		Addrs:          addrs,
		Seed:           7,
		DialBackoff:    10 * time.Millisecond,
		MaxDialBackoff: 80 * time.Millisecond,
	}
	reborn, err := New(cfg)
	if err != nil {
		t.Fatalf("restart New: %v", err)
	}
	t.Cleanup(func() { _ = reborn.Close() })
	if err := reborn.Establish(context.Background(), addrs); err != nil {
		t.Fatalf("restart Establish: %v", err)
	}
	for i := 1; i < n; i++ {
		awaitStat(t, svcs[i], "suspicion cleared on reconnect", 20*time.Second, func(st Stats) bool {
			return st.SuspectedPeers == 0 && st.Reconnects >= 1
		})
	}
}

// TestServiceLingerExtension pins the partition-aware linger: decided
// instances extend their linger window while fewer than n−f processes
// are reachable, and still tombstone once the extension cap runs out.
func TestServiceLingerExtension(t *testing.T) {
	const n = 5
	svcs := startMesh(t, n, func(_ int, cfg *Config) {
		cfg.InstanceTimeout = 20 * time.Second
		cfg.LingerTimeout = 120 * time.Millisecond
	})
	rng := rand.New(rand.NewSource(51))
	inputs := randomInputs(rng, n, 2)
	for i, ch := range proposeAll(t, svcs, 1, inputs) {
		if res := collect(t, ch, 30*time.Second); res.Err != nil {
			t.Fatalf("process %d: %v", i, res.Err)
		}
	}
	// Take two high-id peers down: reachable on the survivors drops to
	// 3 < n−f = 4, so the lingering instance must extend.
	_ = svcs[3].Close()
	_ = svcs[4].Close()
	awaitStat(t, svcs[0], "linger extension under degradation", 20*time.Second, func(st Stats) bool {
		return st.LingerExtensions >= 1
	})
	// The cap bounds the extension: the instance tombstones eventually.
	awaitStat(t, svcs[0], "lingering instance tombstoned at cap", 20*time.Second, func(st Stats) bool {
		return st.Lingering == 0
	})
}

// TestServiceAuthKeyedMesh: a mesh sharing a key establishes, decides,
// and survives a keyed redial after a killed conn.
func TestServiceAuthKeyedMesh(t *testing.T) {
	const n = 5
	key := []byte("correct horse battery staple")
	svcs := startMesh(t, n, func(_ int, cfg *Config) {
		cfg.AuthKey = key
		cfg.MaxDialBackoff = 100 * time.Millisecond
	})
	rng := rand.New(rand.NewSource(61))
	inputs := randomInputs(rng, n, 2)
	for i, ch := range proposeAll(t, svcs, 1, inputs) {
		if res := collect(t, ch, 30*time.Second); res.Err != nil {
			t.Fatalf("keyed mesh, process %d: %v", i, res.Err)
		}
	}
	// A killed conn re-establishes through the keyed handshake.
	svcs[1].KillConn(0)
	awaitStat(t, svcs[1], "keyed reconnect", 20*time.Second, func(st Stats) bool {
		return st.Reconnects >= 1
	})
	inputs2 := randomInputs(rng, n, 2)
	for i, ch := range proposeAll(t, svcs, 2, inputs2) {
		if res := collect(t, ch, 30*time.Second); res.Err != nil {
			t.Fatalf("after keyed reconnect, process %d: %v", i, res.Err)
		}
	}
	for i, s := range svcs {
		if st := s.Stats(); st.AuthFailures != 0 {
			t.Errorf("service %d: %d auth failures on an honest mesh", i, st.AuthFailures)
		}
	}
}

// TestServiceAuthRejections: wrong keys and mode mismatches must keep the
// mesh from establishing, and keyed acceptors count the rejections.
func TestServiceAuthRejections(t *testing.T) {
	const n = 5
	key := []byte("sesame")
	build := func(id int, authKey []byte) *Service {
		cfg := Config{
			Node:             testNodeConfig(n),
			ID:               id,
			Addrs:            loopbackTemplate(n),
			Seed:             int64(id + 1),
			AuthKey:          authKey,
			EstablishTimeout: 700 * time.Millisecond,
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("New(%d): %v", id, err)
		}
		t.Cleanup(func() { _ = s.Close() })
		return s
	}
	svcs := make([]*Service, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		k := key
		switch i {
		case 3:
			k = nil // mode mismatch: keyless process in a keyed mesh
		case 4:
			k = []byte("wrong")
		}
		svcs[i] = build(i, k)
		addrs[i] = svcs[i].Addr()
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i, s := range svcs {
		i, s := i, s
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = s.Establish(context.Background(), addrs)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Errorf("process %d established despite key/mode mismatch", i)
		}
	}
	var rejections int64
	for i := 0; i < 3; i++ { // the correctly keyed acceptors
		rejections += svcs[i].Stats().AuthFailures
	}
	if rejections == 0 {
		t.Error("no auth rejections recorded on keyed acceptors")
	}
}

// TestServiceKillConnRecovers pins the KillConn fault hook used by
// verify.ServiceSystem: the link re-forms and instances keep deciding.
func TestServiceKillConnRecovers(t *testing.T) {
	const n = 5
	svcs := startMesh(t, n, func(_ int, cfg *Config) {
		cfg.MaxDialBackoff = 100 * time.Millisecond
	})
	rng := rand.New(rand.NewSource(71))
	svcs[4].KillConn(2)
	svcs[2].KillConn(4) // idempotent from either side
	inputs := randomInputs(rng, n, 2)
	for i, ch := range proposeAll(t, svcs, 1, inputs) {
		res := collect(t, ch, 30*time.Second)
		if res.Err != nil {
			t.Fatalf("process %d: %v", i, res.Err)
		}
		if in, err := hull.Contains(inputs, res.Decision, 1e-9); err != nil || !in {
			t.Fatalf("process %d: decision %v outside hull (err %v)", i, res.Decision, err)
		}
	}
}
