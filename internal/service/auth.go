package service

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"net"

	"repro/internal/wire"
)

// Keyed handshake (Config.AuthKey non-nil): a mutual HMAC-SHA256
// challenge/response layered on the v2 Hello so connection identity
// holds against an active network attacker, not just an honest-but-racy
// mesh. The dialer opens with a nonce-carrying Hello; the acceptor
// answers with its own nonce plus a MAC binding both nonces and its id
// (proving key knowledge first — the dialer learns a bad key before
// revealing anything); the dialer closes with a MAC over the mirrored
// tuple. Nonces are fresh per connection, so transcripts cannot be
// replayed, and every proof binds the membership epoch the connection
// is being established under. Keyless mode (nil AuthKey) keeps the
// plain id+epoch Hello for examples and tests; the two modes refuse
// each other by construction (body length and missing frames).

// ErrAuthFailed is the handshake failure cause recorded when a peer
// cannot prove knowledge of the shared key.
var ErrAuthFailed = errors.New("service: handshake authentication failed")

// authMAC computes the handshake MAC for one direction: label separates
// the server and client proofs, n1 is the nonce being answered, n2 the
// answerer's own nonce (0 in the closing client proof), id the prover's
// process id, epoch the membership epoch the connection is being
// established under. Binding the epoch into both proofs means the two
// sides commit to the same membership: a Hello whose epoch was tampered
// with in flight — or a peer silently running a different epoch than it
// claims — fails verification.
func authMAC(key []byte, label string, n1, n2 uint64, id uint32, epoch uint64) []byte {
	m := hmac.New(sha256.New, key)
	m.Write([]byte(label))
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], n1)
	m.Write(b[:])
	binary.BigEndian.PutUint64(b[:], n2)
	m.Write(b[:])
	binary.BigEndian.PutUint32(b[:4], id)
	m.Write(b[:4])
	binary.BigEndian.PutUint64(b[:], epoch)
	m.Write(b[:])
	return m.Sum(nil)
}

// newNonce draws a fresh handshake nonce from the system CSPRNG.
func newNonce() (uint64, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return 0, fmt.Errorf("service: nonce: %w", err)
	}
	return binary.BigEndian.Uint64(b[:]), nil
}

// writeFrameBuf sends one frame built by fn through a leased buffer.
func writeFrameBuf(conn net.Conn, fn func([]byte) []byte) error {
	buf := leaseFrame()
	defer releaseFrame(buf)
	*buf = fn((*buf)[:0])
	_, err := conn.Write(*buf)
	return err
}

// readHandshakeFrame reads one frame of the expected kind during the
// handshake (deadline already set by the caller).
func readHandshakeFrame(conn net.Conn, kind wire.FrameKind) ([]byte, error) {
	frame, _, err := wire.ReadFrameInto(conn, nil)
	if err != nil {
		return nil, err
	}
	h, body, err := wire.ParseFrame(frame)
	if err != nil {
		return nil, err
	}
	if h.Kind != kind {
		return nil, fmt.Errorf("service: handshake frame kind %d, want %d", h.Kind, kind)
	}
	return body, nil
}

// clientHandshake runs the dialer's half against peer on an established
// conn under the given membership epoch: plain Hello when keyless, the
// full challenge/response when keyed. Both sides MAC over the epoch, so
// a mismatch surfaces as ErrAuthFailed rather than a silent cross-epoch
// connection.
func (s *Service) clientHandshake(conn net.Conn, peer int, epoch uint64) error {
	key := s.cfg.AuthKey
	if len(key) == 0 {
		return writeHello(conn, uint32(s.cfg.ID), epoch)
	}
	cn, err := newNonce()
	if err != nil {
		return err
	}
	if err := writeFrameBuf(conn, func(dst []byte) []byte {
		return wire.AppendHelloNonce(dst, uint32(s.cfg.ID), epoch, cn)
	}); err != nil {
		return err
	}
	body, err := readHandshakeFrame(conn, wire.FrameChallenge)
	if err != nil {
		return err
	}
	sn, mac, err := wire.ParseChallenge(body)
	if err != nil {
		return err
	}
	if !hmac.Equal(mac, authMAC(key, "bvc2-srv", cn, sn, uint32(peer), epoch)) {
		return ErrAuthFailed
	}
	return writeFrameBuf(conn, func(dst []byte) []byte {
		return wire.AppendAuth(dst, authMAC(key, "bvc2-cli", sn, 0, uint32(s.cfg.ID), epoch))
	})
}

// serverHandshake runs the acceptor's half on a fresh inbound conn: read
// the Hello, refuse epochs this process does not hold (ErrStaleEpoch),
// authenticate when keyed, and return the identified peer id and the
// epoch the connection serves. The caller has set the read deadline.
func (s *Service) serverHandshake(conn net.Conn) (int, uint64, error) {
	body, err := readHandshakeFrame(conn, wire.FrameHello)
	if err != nil {
		return 0, 0, err
	}
	key := s.cfg.AuthKey
	if len(key) == 0 {
		peer, epoch, err := wire.ParseHello(body)
		if err != nil {
			return 0, 0, err // a keyed hello against a keyless mesh lands here
		}
		if s.meshForEpoch(epoch) == nil {
			return 0, 0, fmt.Errorf("%w: hello epoch %d (current %d)", ErrStaleEpoch, epoch, s.Epoch())
		}
		return int(peer), epoch, nil
	}
	peer, epoch, cn, err := wire.ParseHelloNonce(body)
	if err != nil {
		return 0, 0, fmt.Errorf("%w: %v", ErrAuthFailed, err)
	}
	if s.meshForEpoch(epoch) == nil {
		return 0, 0, fmt.Errorf("%w: hello epoch %d (current %d)", ErrStaleEpoch, epoch, s.Epoch())
	}
	sn, err := newNonce()
	if err != nil {
		return 0, 0, err
	}
	if err := writeFrameBuf(conn, func(dst []byte) []byte {
		return wire.AppendChallenge(dst, sn, authMAC(key, "bvc2-srv", cn, sn, uint32(s.cfg.ID), epoch))
	}); err != nil {
		return 0, 0, err
	}
	body, err = readHandshakeFrame(conn, wire.FrameAuth)
	if err != nil {
		return 0, 0, err
	}
	mac, err := wire.ParseAuth(body)
	if err != nil {
		return 0, 0, fmt.Errorf("%w: %v", ErrAuthFailed, err)
	}
	if !hmac.Equal(mac, authMAC(key, "bvc2-cli", sn, 0, uint32(peer), epoch)) {
		return 0, 0, ErrAuthFailed
	}
	return int(peer), epoch, nil
}
