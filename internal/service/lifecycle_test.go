package service

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/wire"
)

// Lifecycle edge coverage: the transitions the happy-path and failure
// suites skip over — Propose arriving while a drain is still waiting on
// in-flight instances, instance-id reuse straddling a connection failure,
// and a linger window closing just before a lagging peer's witness report
// arrives. All of these run under -race in CI.

// TestServiceProposeWhileDrainWaits: Drain refuses new proposals from the
// moment it is called, not from the moment it returns. An instance only
// one process proposed can never decide, so Drain must sit waiting on it;
// a Propose issued in that window gets ErrDraining, and Drain still
// completes once the straggler times out.
func TestServiceProposeWhileDrainWaits(t *testing.T) {
	const n = 5
	svcs := startMesh(t, n, func(_ int, cfg *Config) {
		cfg.InstanceTimeout = 500 * time.Millisecond
	})
	rng := rand.New(rand.NewSource(43))
	inputs := randomInputs(rng, n, 2)

	// Only process 0 proposes: the instance is undecidable and holds the
	// drain open until its timeout.
	ch, err := svcs[0].Propose(1, inputs[0])
	if err != nil {
		t.Fatalf("Propose: %v", err)
	}
	drainErr := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	go func() { drainErr <- svcs[0].Drain(ctx) }()

	deadline := time.Now().Add(10 * time.Second)
	for !svcs[0].drainingNow() {
		if time.Now().After(deadline) {
			t.Fatal("Drain never flipped the draining latch")
		}
		time.Sleep(time.Millisecond)
	}
	if got := svcs[0].Stats().ActiveInstances; got != 1 {
		t.Fatalf("ActiveInstances = %d while Drain waits, want 1", got)
	}
	if _, err := svcs[0].Propose(2, inputs[0]); !errors.Is(err, ErrDraining) {
		t.Fatalf("Propose while Drain waits: %v, want ErrDraining", err)
	}

	if res := collect(t, ch, 10*time.Second); !errors.Is(res.Err, ErrInstanceTimeout) {
		t.Fatalf("straggler result: %v, want ErrInstanceTimeout", res.Err)
	}
	if err := <-drainErr; err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

// TestServiceDuplicateIDAcrossReconnect: the duplicate-instance guard is
// shard state, not connection state — an id that finished before a
// connection failure is still refused after the link re-establishes, and
// fresh ids still work.
func TestServiceDuplicateIDAcrossReconnect(t *testing.T) {
	const n = 5
	svcs := startMesh(t, n, nil)
	rng := rand.New(rand.NewSource(47))
	inputs := randomInputs(rng, n, 2)
	for i, ch := range proposeAll(t, svcs, 5, inputs) {
		if res := collect(t, ch, 30*time.Second); res.Err != nil {
			t.Fatalf("first run, process %d: %v", i, res.Err)
		}
	}

	// Yank the established 1→0 socket (higher id dials lower, so svcs[1]
	// owns the redial) and wait for the link to come back.
	p := svcs[1].peerAt(0)
	p.mu.Lock()
	conn := p.conn
	p.mu.Unlock()
	if conn == nil {
		t.Fatal("link 1→0 has no connection after Establish")
	}
	_ = conn.Close()
	deadline := time.Now().Add(10 * time.Second)
	for svcs[1].Stats().Reconnects == 0 {
		if time.Now().After(deadline) {
			t.Fatal("link 1→0 never reconnected")
		}
		time.Sleep(10 * time.Millisecond)
	}

	ch, err := svcs[1].Propose(5, inputs[1])
	if err != nil {
		t.Fatalf("re-Propose after reconnect: %v", err)
	}
	if res := collect(t, ch, 10*time.Second); !errors.Is(res.Err, ErrDuplicateInstance) {
		t.Fatalf("re-Propose after reconnect: %v, want ErrDuplicateInstance", res.Err)
	}
	for i, ch := range proposeAll(t, svcs, 6, inputs) {
		if res := collect(t, ch, 30*time.Second); res.Err != nil {
			t.Fatalf("fresh id after reconnect, process %d: %v", i, res.Err)
		}
	}
}

// TestServiceLateReportAfterLingerExpiry: one process tombstones a decided
// instance on a tiny linger window, then a lagging peer's witness report
// for that instance arrives. The tombstone must swallow the frame — no
// background error, no resurrected state — and the mesh must keep
// deciding fresh instances.
func TestServiceLateReportAfterLingerExpiry(t *testing.T) {
	const n = 5
	svcs := startMesh(t, n, func(id int, cfg *Config) {
		if id == 0 {
			cfg.LingerTimeout = 50 * time.Millisecond
		}
	})
	rng := rand.New(rand.NewSource(53))
	inputs := randomInputs(rng, n, 2)
	for i, ch := range proposeAll(t, svcs, 3, inputs) {
		if res := collect(t, ch, 30*time.Second); res.Err != nil {
			t.Fatalf("instance 3, process %d: %v", i, res.Err)
		}
	}

	// Wait for process 0's expire tick to tombstone the lingering instance.
	deadline := time.Now().Add(10 * time.Second)
	for svcs[0].Stats().Lingering != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("instance never left the linger window: %+v", svcs[0].Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Inject the late report: a peer that (from process 0's view) is still
	// catching up on instance 3. The frame takes the real pooled-connection
	// path into process 0's shard, where the tombstone must drop it.
	buf := leaseFrame()
	*buf = wire.AppendConsensus((*buf)[:0], 3, &wire.ConsensusMsg{
		Kind: wire.ConsensusReport, Origin: 1, Round: 2,
	})
	svcs[1].peerAt(0).enqueue(buf)

	time.Sleep(200 * time.Millisecond)
	if err := svcs[0].Err(); err != nil {
		t.Fatalf("late report raised a background error: %v", err)
	}
	for i, ch := range proposeAll(t, svcs, 4, inputs) {
		if res := collect(t, ch, 30*time.Second); res.Err != nil {
			t.Fatalf("instance 4 after late report, process %d: %v", i, res.Err)
		}
	}
	if got := svcs[0].Stats().ReadErrors; got != 0 {
		t.Errorf("ReadErrors = %d after late report, want 0", got)
	}
}
