package service

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geometry"
	"repro/internal/hull"
)

// testNodeConfig is the small-mesh consensus configuration the service
// tests run: n = 5 = (d+2)f+1 with d = 2, f = 1, on a fixed 4-round
// horizon (the analytic bound is ~74 rounds; hull validity holds from
// round 1, which is what these tests assert — ε-agreement at the analytic
// horizon is the simulator suites' job).
func testNodeConfig(n int) core.AsyncConfig {
	return core.AsyncConfig{
		Params: core.Params{
			N: n, F: 1, D: 2,
			Epsilon: 0.05,
			Bounds:  geometry.UniformBox(2, 0, 1),
		},
		MaxRounds: 4,
	}
}

// startMesh builds and establishes an n-process loopback mesh. Services
// are closed at test cleanup.
func startMesh(t *testing.T, n int, mut func(id int, cfg *Config)) []*Service {
	t.Helper()
	svcs := make([]*Service, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		cfg := Config{
			Node:  testNodeConfig(n),
			ID:    i,
			Addrs: loopbackTemplate(n),
			Seed:  int64(i + 1),
		}
		if mut != nil {
			mut(i, &cfg)
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("New(%d): %v", i, err)
		}
		t.Cleanup(func() { _ = s.Close() })
		svcs[i] = s
		addrs[i] = s.Addr()
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i, s := range svcs {
		i, s := i, s
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = s.Establish(context.Background(), addrs)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("Establish(%d): %v", i, err)
		}
	}
	return svcs
}

func loopbackTemplate(n int) []string {
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = "127.0.0.1:0"
	}
	return addrs
}

// proposeAll proposes instance id with per-process inputs on every
// service and returns one result channel per process.
func proposeAll(t *testing.T, svcs []*Service, id uint64, inputs []geometry.Vector) []<-chan Result {
	t.Helper()
	chans := make([]<-chan Result, len(svcs))
	for i, s := range svcs {
		ch, err := s.Propose(id, inputs[i])
		if err != nil {
			t.Fatalf("Propose(%d, inst %d): %v", i, id, err)
		}
		chans[i] = ch
	}
	return chans
}

func randomInputs(rng *rand.Rand, n, d int) []geometry.Vector {
	inputs := make([]geometry.Vector, n)
	for i := range inputs {
		v := make(geometry.Vector, d)
		for j := range v {
			v[j] = rng.Float64()
		}
		inputs[i] = v
	}
	return inputs
}

func collect(t *testing.T, ch <-chan Result, within time.Duration) Result {
	t.Helper()
	select {
	case r := <-ch:
		return r
	case <-time.After(within):
		t.Fatalf("no result within %v", within)
		return Result{}
	}
}

// TestServiceManyInstances runs many concurrent instances through one
// mesh and checks every process decides every instance with a decision
// inside the instance's input hull (the validity condition the paper
// guarantees from round 1).
func TestServiceManyInstances(t *testing.T) {
	const n, instances = 5, 24
	svcs := startMesh(t, n, nil)
	rng := rand.New(rand.NewSource(7))

	type run struct {
		inputs []geometry.Vector
		chans  []<-chan Result
	}
	runs := make(map[uint64]run, instances)
	for id := uint64(1); id <= instances; id++ {
		inputs := randomInputs(rng, n, 2)
		runs[id] = run{inputs: inputs, chans: proposeAll(t, svcs, id, inputs)}
	}
	for id, r := range runs {
		for i, ch := range r.chans {
			res := collect(t, ch, 30*time.Second)
			if res.Err != nil {
				t.Fatalf("instance %d process %d: %v", id, i, res.Err)
			}
			if res.Instance != id {
				t.Fatalf("instance %d process %d: result for %d", id, i, res.Instance)
			}
			in, err := hull.Contains(r.inputs, res.Decision, 1e-9)
			if err != nil {
				t.Fatalf("instance %d: containment: %v", id, err)
			}
			if !in {
				t.Errorf("instance %d process %d: decision %v outside input hull %v", id, i, res.Decision, r.inputs)
			}
		}
	}
	for i, s := range svcs {
		if err := s.Err(); err != nil {
			t.Errorf("service %d background error: %v", i, err)
		}
		st := s.Stats()
		if st.ActiveInstances != 0 {
			t.Errorf("service %d: %d instances still active", i, st.ActiveInstances)
		}
		if st.Decided != instances {
			t.Errorf("service %d: decided %d, want %d", i, st.Decided, instances)
		}
		if st.FramesIn == 0 || st.FramesOut == 0 || st.BytesOut == 0 {
			t.Errorf("service %d: frame counters empty: %+v", i, st)
		}
	}
}

// TestServiceLatePropose delays one process's proposal: the early
// processes' round-1 traffic must be buffered and replayed so everyone
// still decides.
func TestServiceLatePropose(t *testing.T) {
	const n = 5
	svcs := startMesh(t, n, nil)
	rng := rand.New(rand.NewSource(11))
	inputs := randomInputs(rng, n, 2)

	chans := make([]<-chan Result, n)
	for i := 0; i < n-1; i++ {
		ch, err := svcs[i].Propose(1, inputs[i])
		if err != nil {
			t.Fatalf("Propose(%d): %v", i, err)
		}
		chans[i] = ch
	}
	time.Sleep(150 * time.Millisecond) // let early traffic arrive and buffer
	last := svcs[n-1]
	if got := last.Stats().PendingFrames; got == 0 {
		t.Error("late process buffered no pending frames (want > 0)")
	}
	ch, err := last.Propose(1, inputs[n-1])
	if err != nil {
		t.Fatalf("late Propose: %v", err)
	}
	chans[n-1] = ch
	for i, ch := range chans {
		if res := collect(t, ch, 30*time.Second); res.Err != nil {
			t.Fatalf("process %d: %v", i, res.Err)
		}
	}
}

// TestServiceDuplicateInstance rejects reuse of a live or recently
// finished id.
func TestServiceDuplicateInstance(t *testing.T) {
	const n = 5
	svcs := startMesh(t, n, nil)
	rng := rand.New(rand.NewSource(3))
	inputs := randomInputs(rng, n, 2)
	chans := proposeAll(t, svcs, 9, inputs)
	for _, ch := range chans {
		if res := collect(t, ch, 30*time.Second); res.Err != nil {
			t.Fatalf("first run: %v", res.Err)
		}
	}
	ch, err := svcs[0].Propose(9, inputs[0])
	if err != nil {
		t.Fatalf("re-Propose: %v", err)
	}
	if res := collect(t, ch, 10*time.Second); !errors.Is(res.Err, ErrDuplicateInstance) {
		t.Fatalf("re-Propose result: %v, want ErrDuplicateInstance", res.Err)
	}
}

// TestServiceInstanceTimeout: an instance only one process proposes can
// never decide; it must be retired with ErrInstanceTimeout, and the
// other processes' buffered frames for it must expire.
func TestServiceInstanceTimeout(t *testing.T) {
	const n = 5
	svcs := startMesh(t, n, func(_ int, cfg *Config) {
		cfg.InstanceTimeout = 300 * time.Millisecond
	})
	ch, err := svcs[0].Propose(77, geometry.Vector{0.5, 0.5})
	if err != nil {
		t.Fatalf("Propose: %v", err)
	}
	res := collect(t, ch, 10*time.Second)
	if !errors.Is(res.Err, ErrInstanceTimeout) {
		t.Fatalf("result %v, want ErrInstanceTimeout", res.Err)
	}
	if got := svcs[0].Stats().TimedOut; got != 1 {
		t.Errorf("TimedOut = %d, want 1", got)
	}
	// The peers buffered p0's round-1 frames for instance 77; the pending
	// boxes expire on the same clock.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if svcs[1].Stats().PendingFrames == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pending frames never expired: %+v", svcs[1].Stats())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestServiceStatsSnapshot sanity-checks the gauge bookkeeping under a
// small load burst.
func TestServiceStatsSnapshot(t *testing.T) {
	const n, instances = 5, 8
	svcs := startMesh(t, n, nil)
	rng := rand.New(rand.NewSource(5))
	var all [][]<-chan Result
	for id := uint64(1); id <= instances; id++ {
		all = append(all, proposeAll(t, svcs, id, randomInputs(rng, n, 2)))
	}
	for _, chans := range all {
		for _, ch := range chans {
			if res := collect(t, ch, 30*time.Second); res.Err != nil {
				t.Fatalf("%v", res.Err)
			}
		}
	}
	for i, s := range svcs {
		st := s.Stats()
		if st.Proposed != instances || st.Decided != instances {
			t.Errorf("service %d: proposed %d decided %d, want %d/%d", i, st.Proposed, st.Decided, instances, instances)
		}
		if st.PendingFrames != 0 {
			t.Errorf("service %d: %d pending frames after quiesce", i, st.PendingFrames)
		}
	}
}

func TestServiceConfigValidation(t *testing.T) {
	cfg := Config{Node: testNodeConfig(5), ID: 0, Addrs: loopbackTemplate(5)}
	cfg.Node.N = 4 // mismatch vs 5 addresses
	if _, err := New(cfg); err == nil {
		t.Error("n mismatch accepted")
	}
	cfg = Config{Node: testNodeConfig(5), ID: 9, Addrs: loopbackTemplate(5)}
	if _, err := New(cfg); err == nil {
		t.Error("out-of-range id accepted")
	}
	cfg = Config{Node: testNodeConfig(5), ID: 0, Addrs: loopbackTemplate(5)}
	cfg.Node.F = 2 // n=5 < (d+2)f+1=9
	if _, err := New(cfg); err == nil {
		t.Error("invalid consensus bound accepted")
	}
}

func ExampleService() {
	// Compile-only sketch of the service lifecycle; the runnable version
	// is examples/tcpcluster.
	fmt.Println("see examples/tcpcluster")
	// Output: see examples/tcpcluster
}
