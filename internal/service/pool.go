package service

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"syscall"
	"time"

	"repro/internal/wire"
)

// framePool leases encode buffers to senders; writers return them after
// the frame is copied into the coalescing write buffer. Frames are small
// (tens of bytes), so one pool class is enough.
var framePool = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

func leaseFrame() *[]byte    { return framePool.Get().(*[]byte) }
func releaseFrame(b *[]byte) { *b = (*b)[:0]; framePool.Put(b) }

// peerLink is one peer's slot in the connection pool: the persistent
// connection (replaced transparently on failure), the bounded outbox its
// writer goroutine drains, and the reconnect state. The mesh convention is
// the transport package's: the higher id dials the lower, so exactly one
// side owns redialing after a failure.
type peerLink struct {
	svc  *Service
	id   int
	addr string

	outbox chan *[]byte

	mu      sync.Mutex
	cond    *sync.Cond
	conn    net.Conn
	gen     int // bumped per installed conn; stale failures are ignored
	stopped bool

	ready     chan struct{} // closed on first successful connect
	readyOnce sync.Once

	goodbye   bool // peer announced drain; no redial
	redialing bool
}

func newPeerLink(svc *Service, id int, addr string) *peerLink {
	p := &peerLink{
		svc:    svc,
		id:     id,
		addr:   addr,
		outbox: make(chan *[]byte, svc.cfg.OutboxDepth),
		ready:  make(chan struct{}),
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// install replaces the link's connection and starts its reader loop.
func (p *peerLink) install(conn net.Conn) {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		_ = conn.Close()
		return
	}
	if p.conn != nil {
		_ = p.conn.Close()
	}
	p.conn = conn
	p.gen++
	gen := p.gen
	p.cond.Broadcast()
	p.mu.Unlock()
	p.readyOnce.Do(func() { close(p.ready) })

	p.svc.wg.Add(1)
	go func() {
		defer p.svc.wg.Done()
		p.readLoop(conn, gen)
	}()
}

// failed tears down generation gen's connection (no-op when a newer one
// is already installed) and, on the dialing side, starts the redial loop.
func (p *peerLink) failed(gen int) {
	p.mu.Lock()
	if p.stopped || gen != p.gen || p.conn == nil {
		p.mu.Unlock()
		return
	}
	_ = p.conn.Close()
	p.conn = nil
	redial := p.svc.cfg.ID > p.id && !p.goodbye && !p.redialing
	if redial {
		p.redialing = true
	}
	p.mu.Unlock()
	if redial {
		p.svc.wg.Add(1)
		go func() {
			defer p.svc.wg.Done()
			p.redial()
		}()
	}
}

// stop makes the link inert: waiting writers wake, the connection closes.
func (p *peerLink) stop() {
	p.mu.Lock()
	p.stopped = true
	if p.conn != nil {
		_ = p.conn.Close()
		p.conn = nil
	}
	p.cond.Broadcast()
	p.mu.Unlock()
}

// sawGoodbye marks the peer as draining; the redial loop gives up on it.
func (p *peerLink) sawGoodbye() {
	p.mu.Lock()
	p.goodbye = true
	p.mu.Unlock()
}

// waitConn blocks until a connection is installed (returning it with its
// generation) or the link stops (returning nil).
func (p *peerLink) waitConn() (net.Conn, int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.conn == nil && !p.stopped {
		p.cond.Wait()
	}
	return p.conn, p.gen
}

// connected reports whether a connection is currently installed.
func (p *peerLink) connected() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.conn != nil
}

// enqueue queues one leased frame for transmission, applying the slow-peer
// policy when the outbox is full: shed drops the frame (counted), block
// waits for space — backpressure that propagates to the proposing shard.
// Block only blocks while the peer is connected: a full outbox on a
// disconnected link sheds instead (counted as WriteDrops), because
// blocking on a crashed peer would stall the whole shard — the protocols
// tolerate the loss exactly as they tolerate the crash itself.
func (p *peerLink) enqueue(buf *[]byte) {
	select {
	case p.outbox <- buf:
		return
	default:
	}
	if p.svc.cfg.SlowPeer == ShedSlowPeer {
		releaseFrame(buf)
		p.svc.ctr.sheds.Add(1)
		return
	}
	for {
		if !p.connected() {
			releaseFrame(buf)
			p.svc.ctr.writeDrops.Add(1)
			return
		}
		select {
		case p.outbox <- buf:
			return
		case <-p.svc.stop:
			releaseFrame(buf)
			return
		case <-time.After(5 * time.Millisecond):
			// Re-check the link: the peer may have died while we waited.
		}
	}
}

// writeLoop drains the outbox, coalescing bursts of frames into single
// writes (the "streamed frames" path: one syscall carries many frames).
// A frame batch that fails mid-write is dropped — to the protocols the
// loss looks like a crashed peer, which they tolerate; the link itself
// reconnects underneath.
func (p *peerLink) writeLoop() {
	const coalesceBytes = 32 << 10
	wbuf := make([]byte, 0, coalesceBytes+1024)
	for {
		var first *[]byte
		select {
		case first = <-p.outbox:
		case <-p.svc.stop:
			return
		}
		frames := 1
		wbuf = append(wbuf[:0], *first...)
		releaseFrame(first)
	coalesce:
		for len(wbuf) < coalesceBytes {
			select {
			case b := <-p.outbox:
				wbuf = append(wbuf, *b...)
				releaseFrame(b)
				frames++
			default:
				break coalesce
			}
		}
		conn, gen := p.waitConn()
		if conn == nil {
			return // stopped
		}
		if _, err := conn.Write(wbuf); err != nil {
			p.svc.ctr.writeDrops.Add(int64(frames))
			p.failed(gen)
			continue
		}
		p.svc.ctr.framesOut.Add(int64(frames))
		p.svc.ctr.bytesOut.Add(int64(len(wbuf)))
	}
}

// readLoop decodes frames off one connection and routes consensus
// messages to their instance's shard. Clean peer shutdowns (EOF, reset,
// local close) end the loop quietly; anything else counts as a read
// error. Either way the link is marked failed so the dialing side
// reconnects.
func (p *peerLink) readLoop(conn net.Conn, gen int) {
	br := bufio.NewReaderSize(conn, 64<<10)
	var buf []byte
	var dec wire.ConsensusMsg
	for {
		frame, nb, err := wire.ReadFrameInto(br, buf)
		if err != nil {
			// ErrUnexpectedEOF is a peer that crashed mid-frame — as clean
			// a shutdown as the transport can observe.
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) &&
				!errors.Is(err, syscall.ECONNRESET) && !errors.Is(err, net.ErrClosed) && !stopping(p.svc) {
				p.svc.ctr.readErrors.Add(1)
				p.svc.noteErr(fmt.Errorf("service: read from peer %d: %w", p.id, err))
			}
			p.failed(gen)
			return
		}
		buf = nb
		h, body, err := wire.ParseFrame(frame)
		if err != nil {
			p.svc.ctr.readErrors.Add(1)
			p.svc.noteErr(fmt.Errorf("service: peer %d: %w", p.id, err))
			p.failed(gen)
			return
		}
		p.svc.ctr.framesIn.Add(1)
		p.svc.ctr.bytesIn.Add(int64(len(frame) + 4))
		switch h.Kind {
		case wire.FrameConsensus:
			if err := wire.DecodeConsensus(&dec, body); err != nil {
				p.svc.ctr.readErrors.Add(1)
				p.svc.noteErr(fmt.Errorf("service: peer %d: %w", p.id, err))
				p.failed(gen)
				return
			}
			m, err := fromWire(&dec)
			if err != nil {
				p.svc.ctr.readErrors.Add(1)
				p.svc.noteErr(err)
				continue
			}
			sh := p.svc.shardFor(h.Instance)
			select {
			case sh.queue <- inMsg{instance: h.Instance, from: p.id, msg: m}:
			case <-p.svc.stop:
				return
			}
		case wire.FrameGoodbye:
			p.sawGoodbye()
		case wire.FrameHello:
			// Redundant hello after handshake; ignore.
		default:
			// Unknown frame kind: skip (forward compatibility).
		}
	}
}

// redial re-establishes a failed connection with capped exponential
// backoff. It gives up when the service stops or the peer said goodbye.
func (p *peerLink) redial() {
	defer func() {
		p.mu.Lock()
		p.redialing = false
		p.mu.Unlock()
	}()
	backoff := p.svc.cfg.DialBackoff
	for {
		p.mu.Lock()
		done := p.stopped || p.goodbye || p.conn != nil
		addr := p.addr
		p.mu.Unlock()
		if done {
			return
		}
		conn, err := net.DialTimeout("tcp", addr, p.svc.cfg.EstablishTimeout)
		if err == nil {
			if err = writeHello(conn, uint32(p.svc.cfg.ID)); err == nil {
				p.svc.ctr.reconnects.Add(1)
				p.install(conn)
				return
			}
			_ = conn.Close()
		}
		select {
		case <-p.svc.stop:
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > p.svc.cfg.MaxDialBackoff {
			backoff = p.svc.cfg.MaxDialBackoff
		}
	}
}

// writeHello sends the handshake frame announcing our process id.
func writeHello(conn net.Conn, id uint32) error {
	buf := leaseFrame()
	defer releaseFrame(buf)
	*buf = wire.AppendHello((*buf)[:0], id)
	_, err := conn.Write(*buf)
	return err
}

func stopping(s *Service) bool {
	select {
	case <-s.stop:
		return true
	default:
		return false
	}
}

// acceptLoop accepts mesh connections for the service's lifetime: the
// initial establishment from every higher-id peer, and replacement
// connections after failures. The dialer identifies itself with a Hello
// frame; anything else is rejected.
func (s *Service) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if stopping(s) || errors.Is(err, net.ErrClosed) {
				return
			}
			s.noteErr(fmt.Errorf("service: accept: %w", err))
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handshake(conn)
		}()
	}
}

// handshake validates an inbound connection's Hello and installs it on
// the peer's link.
func (s *Service) handshake(conn net.Conn) {
	_ = conn.SetReadDeadline(time.Now().Add(s.cfg.EstablishTimeout))
	frame, _, err := wire.ReadFrameInto(conn, nil)
	if err != nil {
		_ = conn.Close()
		return
	}
	h, body, err := wire.ParseFrame(frame)
	if err != nil || h.Kind != wire.FrameHello {
		_ = conn.Close()
		return
	}
	peer, err := wire.ParseHello(body)
	if err != nil || int(peer) <= s.cfg.ID || int(peer) >= s.n {
		_ = conn.Close()
		return
	}
	_ = conn.SetReadDeadline(time.Time{})
	s.peers[peer].install(conn)
}

// Establish builds the full mesh: dial every lower-id peer (retrying
// until its listener is up), accept from every higher-id peer, and return
// once every link is connected or ctx/EstablishTimeout expires. A non-nil
// addrs overrides the construction-time address list — the port-0 flow:
// every process listens on an ephemeral port, the bound addresses are
// exchanged out of band, and Establish gets the final list.
func (s *Service) Establish(ctx context.Context, addrs []string) error {
	if addrs != nil {
		if len(addrs) != s.n {
			return fmt.Errorf("service: establish: %d addresses for n=%d", len(addrs), s.n)
		}
		for id, p := range s.peers {
			if p != nil {
				p.mu.Lock()
				p.addr = addrs[id]
				p.mu.Unlock()
			}
		}
	}
	ctx, cancel := context.WithTimeout(ctx, s.cfg.EstablishTimeout)
	defer cancel()
	for id := 0; id < s.cfg.ID; id++ {
		p := s.peers[id]
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			p.mu.Lock()
			addr := p.addr
			p.mu.Unlock()
			conn, err := dialRetry(ctx, addr, s.cfg.DialBackoff, s.cfg.MaxDialBackoff)
			if err != nil {
				return // Establish's ready-wait reports the timeout
			}
			if err := writeHello(conn, uint32(s.cfg.ID)); err != nil {
				_ = conn.Close()
				return
			}
			p.install(conn)
		}()
	}
	for id, p := range s.peers {
		if p == nil {
			continue
		}
		select {
		case <-p.ready:
		case <-ctx.Done():
			return fmt.Errorf("service: establish: peer %d not connected: %w", id, ctx.Err())
		case <-s.stop:
			return ErrServiceClosed
		}
	}
	return nil
}

// dialRetry dials addr until it succeeds or ctx expires, with capped
// exponential backoff between attempts — peers come up in any order.
func dialRetry(ctx context.Context, addr string, backoff, maxBackoff time.Duration) (net.Conn, error) {
	var d net.Dialer
	for {
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			return conn, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}
