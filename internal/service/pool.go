package service

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"syscall"
	"time"

	"repro/internal/wire"
)

// framePool leases encode buffers to senders; writers return them after
// the frame is copied into the coalescing write buffer. Frames are small
// (tens of bytes), so one pool class is enough.
var framePool = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

func leaseFrame() *[]byte    { return framePool.Get().(*[]byte) }
func releaseFrame(b *[]byte) { *b = (*b)[:0]; framePool.Put(b) }

// pressureSuspectAfter is the consecutive-outbox-stall count past which a
// connected peer is suspected: the link is up but the peer is not keeping
// pace, so quorum math should stop counting on it.
const pressureSuspectAfter = 64

// peerLink is one peer's slot in the connection pool: the persistent
// connection (replaced transparently on failure), the bounded outbox its
// writer goroutine drains, the reconnect state, and the health ladder
// (consecutive dial failures and outbox pressure feeding suspicion). The
// mesh convention is the transport package's: the higher id dials the
// lower, so exactly one side owns redialing after a failure.
type peerLink struct {
	svc  *Service
	id   int
	addr string

	outbox chan *[]byte

	mu      sync.Mutex
	cond    *sync.Cond
	conn    net.Conn
	gen     int // bumped per installed conn; stale failures are ignored
	stopped bool

	ready     chan struct{} // closed on first successful connect
	readyOnce sync.Once

	goodbye   bool // peer announced drain; no redial
	redialing bool

	// epoch is the newest membership epoch this link belongs to; dials
	// announce it in the Hello and the keyed handshake MAC binds it. A
	// link shared across epochs (address unchanged) carries the newest.
	epoch uint64

	// Health ladder (guarded by mu). dialFails counts consecutive failed
	// dial/handshake attempts; pressure counts consecutive full-outbox
	// stalls; downSince timestamps the last disconnect; rng jitters the
	// redial backoff (seeded per link, so schedules are replayable).
	dialFails int
	pressure  int
	downSince time.Time
	rng       *rand.Rand
}

func newPeerLink(svc *Service, id int, addr string) *peerLink {
	p := &peerLink{
		svc:    svc,
		id:     id,
		addr:   addr,
		epoch:  svc.cfg.Epoch,
		outbox: make(chan *[]byte, svc.cfg.OutboxDepth),
		ready:  make(chan struct{}),
		rng:    rand.New(rand.NewSource(svc.cfg.Seed ^ int64(uint64(id+1)*0x9e3779b97f4a7c15))),
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// setEpoch raises the link's epoch tag (it never goes backwards: a link
// shared across epochs handshakes under the newest one it serves).
func (p *peerLink) setEpoch(e uint64) {
	p.mu.Lock()
	if e > p.epoch {
		p.epoch = e
	}
	p.mu.Unlock()
}

// curEpoch reads the epoch the link's dials announce.
func (p *peerLink) curEpoch() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.epoch
}

// startLink starts the link's writer goroutine; called once per link,
// at service construction or when a reconfiguration creates the link.
func (s *Service) startLink(p *peerLink) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		p.writeLoop()
	}()
}

// startRedial kicks off the dial loop toward a peer this process is the
// dialing side for (used by adoptEpoch for freshly created links; link
// failures reuse the same loop via failed).
func (s *Service) startRedial(p *peerLink) {
	p.mu.Lock()
	if p.redialing || p.stopped || p.conn != nil {
		p.mu.Unlock()
		return
	}
	p.redialing = true
	p.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		p.redial()
	}()
}

// suspectedNow reports the link's current suspicion verdict: repeated
// dial failures, a sustained disconnect (the accept side cannot dial, so
// elapsed downtime stands in for failed attempts), or sustained outbox
// pressure. Suspicion is recomputed on read — it clears the moment the
// underlying condition does.
func (p *peerLink) suspectedNow(now time.Time) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.pressure >= pressureSuspectAfter {
		return true
	}
	if p.conn != nil {
		return false
	}
	if p.dialFails >= p.svc.cfg.SuspectAfter {
		return true
	}
	return !p.downSince.IsZero() &&
		now.Sub(p.downSince) >= time.Duration(p.svc.cfg.SuspectAfter)*2*p.svc.cfg.MaxDialBackoff
}

// noteDialFail records one failed dial/handshake attempt and returns the
// jittered backoff to sleep before the next one: uniform in
// [backoff/2, backoff], so a healed partition is not hammered by
// synchronized redials from every survivor.
func (p *peerLink) noteDialFail(backoff time.Duration) time.Duration {
	p.svc.ctr.dialFailures.Add(1)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dialFails++
	half := int64(backoff / 2)
	if half <= 0 {
		return backoff
	}
	return time.Duration(half + p.rng.Int63n(half+1))
}

// noteStall records one full-outbox stall on a connected link.
func (p *peerLink) noteStall() {
	p.svc.ctr.outboxStalls.Add(1)
	p.mu.Lock()
	p.pressure++
	p.mu.Unlock()
}

// clearPressure resets the pressure ladder after the writer drained a
// batch — the peer is keeping pace again.
func (p *peerLink) clearPressure() {
	p.mu.Lock()
	p.pressure = 0
	p.mu.Unlock()
}

// install replaces the link's connection and starts its reader loop.
func (p *peerLink) install(conn net.Conn) {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		_ = conn.Close()
		return
	}
	if p.conn != nil {
		_ = p.conn.Close()
	}
	p.conn = conn
	p.gen++
	gen := p.gen
	p.dialFails = 0
	p.pressure = 0
	p.downSince = time.Time{}
	p.cond.Broadcast()
	p.mu.Unlock()
	p.readyOnce.Do(func() { close(p.ready) })

	p.svc.wg.Add(1)
	go func() {
		defer p.svc.wg.Done()
		p.readLoop(conn, gen)
	}()
}

// failed tears down generation gen's connection (no-op when a newer one
// is already installed) and, on the dialing side, starts the redial loop.
func (p *peerLink) failed(gen int) {
	p.mu.Lock()
	if p.stopped || gen != p.gen || p.conn == nil {
		p.mu.Unlock()
		return
	}
	_ = p.conn.Close()
	p.conn = nil
	p.downSince = time.Now()
	redial := p.svc.cfg.ID > p.id && !p.goodbye && !p.redialing
	if redial {
		p.redialing = true
	}
	p.mu.Unlock()
	if redial {
		p.svc.wg.Add(1)
		go func() {
			defer p.svc.wg.Done()
			p.redial()
		}()
	}
}

// stop makes the link inert: waiting writers wake, the connection closes.
func (p *peerLink) stop() {
	p.mu.Lock()
	p.stopped = true
	if p.conn != nil {
		_ = p.conn.Close()
		p.conn = nil
	}
	p.cond.Broadcast()
	p.mu.Unlock()
}

// sawGoodbye marks the peer as draining; the redial loop gives up on it.
func (p *peerLink) sawGoodbye() {
	p.mu.Lock()
	p.goodbye = true
	p.mu.Unlock()
}

// waitConn blocks until a connection is installed (returning it with its
// generation) or the link stops (returning nil).
func (p *peerLink) waitConn() (net.Conn, int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.conn == nil && !p.stopped {
		p.cond.Wait()
	}
	return p.conn, p.gen
}

// connected reports whether a connection is currently installed.
func (p *peerLink) connected() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.conn != nil
}

// enqueue queues one leased frame for transmission, applying the slow-peer
// policy when the outbox is full: shed drops the frame (counted), block
// waits for space — backpressure that propagates to the proposing shard.
// Block only blocks while the peer is connected: a full outbox on a
// disconnected link sheds instead (counted as WriteDrops), because
// blocking on a crashed peer would stall the whole shard — the protocols
// tolerate the loss exactly as they tolerate the crash itself.
func (p *peerLink) enqueue(buf *[]byte) {
	select {
	case p.outbox <- buf:
		return
	default:
	}
	if p.svc.cfg.SlowPeer == ShedSlowPeer {
		releaseFrame(buf)
		p.svc.ctr.sheds.Add(1)
		return
	}
	p.noteStall()
	for {
		if !p.connected() {
			releaseFrame(buf)
			p.svc.ctr.writeDrops.Add(1)
			return
		}
		select {
		case p.outbox <- buf:
			return
		case <-p.svc.stop:
			releaseFrame(buf)
			return
		case <-time.After(5 * time.Millisecond):
			// Re-check the link: the peer may have died while we waited.
		}
	}
}

// writeLoop drains the outbox, coalescing bursts of frames into single
// writes (the "streamed frames" path: one syscall carries many frames).
// A batch that fails mid-write is RETAINED and resent on the next
// connection generation: the receiver discards any torn frame with the
// dead conn (framing is per-conn), and whole frames it already consumed
// arrive again as duplicates, which the protocols dedup exactly as they
// dedup injected duplicate faults. Delivery is therefore at-least-once
// per link while the peer is reachable; frames are lost only when the
// outbox itself overflows against a down peer (see enqueue).
func (p *peerLink) writeLoop() {
	const coalesceBytes = 32 << 10
	wbuf := make([]byte, 0, coalesceBytes+1024)
	frames := 0
	retained := false
	for {
		if !retained {
			var first *[]byte
			select {
			case first = <-p.outbox:
			case <-p.svc.stop:
				return
			}
			frames = 1
			wbuf = append(wbuf[:0], *first...)
			releaseFrame(first)
		coalesce:
			for len(wbuf) < coalesceBytes {
				select {
				case b := <-p.outbox:
					wbuf = append(wbuf, *b...)
					releaseFrame(b)
					frames++
				default:
					break coalesce
				}
			}
		}
		conn, gen := p.waitConn()
		if conn == nil {
			return // stopped
		}
		if _, err := conn.Write(wbuf); err != nil {
			p.svc.ctr.writeRetries.Add(int64(frames))
			p.failed(gen)
			retained = true
			continue
		}
		retained = false
		p.clearPressure()
		p.svc.ctr.framesOut.Add(int64(frames))
		p.svc.ctr.bytesOut.Add(int64(len(wbuf)))
	}
}

// readLoop decodes frames off one connection and routes consensus
// messages to their instance's shard. Clean peer shutdowns (EOF, reset,
// local close) end the loop quietly; anything else counts as a read
// error. Either way the link is marked failed so the dialing side
// reconnects.
//
// Malformed or undecodable frames are peer-attributable faults — line
// corruption or a hostile sender, both of which the protocols tolerate
// within f — so they count in Stats.ReadErrors and tear the conn down
// for a clean resync, but do not poison Err(): that channel is reserved
// for local/structural failures (see Service.Err).
func (p *peerLink) readLoop(conn net.Conn, gen int) {
	br := bufio.NewReaderSize(conn, 64<<10)
	var buf []byte
	var dec wire.ConsensusMsg
	for {
		frame, nb, err := wire.ReadFrameInto(br, buf)
		if err != nil {
			// ErrUnexpectedEOF is a peer that crashed mid-frame — as clean
			// a shutdown as the transport can observe.
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) &&
				!errors.Is(err, syscall.ECONNRESET) && !errors.Is(err, net.ErrClosed) && !stopping(p.svc) {
				p.svc.ctr.readErrors.Add(1)
			}
			p.failed(gen)
			return
		}
		buf = nb
		h, body, err := wire.ParseFrame(frame)
		if err != nil {
			p.svc.ctr.readErrors.Add(1)
			p.failed(gen)
			return
		}
		p.svc.ctr.framesIn.Add(1)
		p.svc.ctr.bytesIn.Add(int64(len(frame) + 4))
		switch h.Kind {
		case wire.FrameConsensus:
			if err := wire.DecodeConsensus(&dec, body); err != nil {
				p.svc.ctr.readErrors.Add(1)
				p.failed(gen)
				return
			}
			m, err := fromWire(&dec)
			if err != nil {
				p.svc.ctr.readErrors.Add(1)
				continue
			}
			sh := p.svc.shardFor(h.Instance)
			select {
			case sh.queue <- inMsg{instance: h.Instance, from: p.id, msg: m}:
			case <-p.svc.stop:
				return
			}
		case wire.FrameGoodbye:
			p.sawGoodbye()
		case wire.FrameEpochAnnounce:
			epoch, addrs, err := wire.ParseEpochAnnounce(body)
			if err != nil {
				p.svc.ctr.readErrors.Add(1)
				continue
			}
			adopted, err := p.svc.adoptEpoch(epoch, addrs)
			if err != nil {
				p.svc.ctr.readErrors.Add(1)
				continue
			}
			if adopted {
				// Gossip onward so one operator Reconfigure floods the
				// mesh even when some links are down.
				p.svc.announceEpoch(epoch, addrs)
			}
			ack := leaseFrame()
			*ack = wire.AppendEpochAck((*ack)[:0], epoch)
			p.enqueue(ack)
		case wire.FrameEpochAck:
			if _, err := wire.ParseEpochAck(body); err == nil {
				p.svc.ctr.epochAcks.Add(1)
			}
		case wire.FrameHello:
			// Redundant hello after handshake; ignore.
		default:
			// Unknown frame kind: skip (forward compatibility).
		}
	}
}

// redial re-establishes a failed connection with jittered capped
// exponential backoff: attempt k sleeps uniform in [b/2, b] where
// b = min(DialBackoff·2^k, MaxDialBackoff), and every failed attempt
// (dial or handshake) climbs the suspicion ladder. It gives up when the
// service stops or the peer said goodbye.
func (p *peerLink) redial() {
	defer func() {
		p.mu.Lock()
		p.redialing = false
		p.mu.Unlock()
	}()
	backoff := p.svc.cfg.DialBackoff
	for {
		p.mu.Lock()
		done := p.stopped || p.goodbye || p.conn != nil
		addr := p.addr
		p.mu.Unlock()
		if done {
			return
		}
		if conn, err := p.svc.dialPeer(p.id, addr, p.curEpoch()); err == nil {
			p.svc.ctr.reconnects.Add(1)
			p.install(conn)
			return
		}
		sleep := p.noteDialFail(backoff)
		select {
		case <-p.svc.stop:
			return
		case <-time.After(sleep):
		}
		if backoff *= 2; backoff > p.svc.cfg.MaxDialBackoff {
			backoff = p.svc.cfg.MaxDialBackoff
		}
	}
}

// dialPeer runs one complete outbound connection attempt: transport dial
// plus the client half of the handshake under the given membership
// epoch. The returned conn is installed by the caller.
func (s *Service) dialPeer(peer int, addr string, epoch uint64) (net.Conn, error) {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.EstablishTimeout)
	defer cancel()
	conn, err := s.tr.Dial(ctx, peer, addr)
	if err != nil {
		return nil, err
	}
	_ = conn.SetDeadline(s.handshakeDeadline())
	if err := s.clientHandshake(conn, peer, epoch); err != nil {
		_ = conn.Close()
		return nil, err
	}
	_ = conn.SetDeadline(time.Time{})
	return conn, nil
}

// handshakeDeadline bounds one handshake exchange. It is deliberately far
// shorter than EstablishTimeout: a handshake frame lost in transit (a
// lossy link swallowing a Hello) must recycle the connection quickly so
// the dialer's redial ladder retries, instead of pinning both endpoints
// for the whole establish window.
func (s *Service) handshakeDeadline() time.Time {
	d := 2 * time.Second
	if s.cfg.EstablishTimeout < d {
		d = s.cfg.EstablishTimeout
	}
	return time.Now().Add(d)
}

// writeHello sends the handshake frame announcing our process id and
// membership epoch.
func writeHello(conn net.Conn, id uint32, epoch uint64) error {
	buf := leaseFrame()
	defer releaseFrame(buf)
	*buf = wire.AppendHello((*buf)[:0], id, epoch)
	_, err := conn.Write(*buf)
	return err
}

func stopping(s *Service) bool {
	select {
	case <-s.stop:
		return true
	default:
		return false
	}
}

// acceptLoop accepts mesh connections for the service's lifetime: the
// initial establishment from every higher-id peer, and replacement
// connections after failures. The dialer identifies itself with a Hello
// frame; anything else is rejected.
func (s *Service) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if stopping(s) || errors.Is(err, net.ErrClosed) {
				return
			}
			s.noteErr(fmt.Errorf("service: accept: %w", err))
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handshake(conn)
		}()
	}
}

// handshake validates an inbound connection's Hello — running the keyed
// challenge/response when Config.AuthKey is set — wraps the conn through
// the transport, and installs it on the link of the mesh named by the
// dialer's epoch. A Hello claiming an epoch this process does not hold
// (never adopted, or already retired) is rejected and counted — the
// stale-config guard that keeps an out-of-date replacement process off
// the mesh until it is restarted with the current membership.
func (s *Service) handshake(conn net.Conn) {
	_ = conn.SetDeadline(s.handshakeDeadline())
	peer, epoch, err := s.serverHandshake(conn)
	if err != nil || peer <= s.cfg.ID || peer >= s.n {
		if errors.Is(err, ErrAuthFailed) {
			s.ctr.authFailures.Add(1)
		}
		if errors.Is(err, ErrStaleEpoch) {
			s.ctr.staleEpochRejects.Add(1)
		}
		_ = conn.Close()
		return
	}
	m := s.meshForEpoch(epoch)
	if m == nil {
		// Retired between the handshake check and here.
		s.ctr.staleEpochRejects.Add(1)
		_ = conn.Close()
		return
	}
	_ = conn.SetDeadline(time.Time{})
	m.peers[peer].install(s.tr.Accepted(peer, conn))
}

// Establish builds the full mesh: dial every lower-id peer (retrying
// until its listener is up), accept from every higher-id peer, and return
// once every link is connected or ctx/EstablishTimeout expires. A non-nil
// addrs overrides the construction-time address list — the port-0 flow:
// every process listens on an ephemeral port, the bound addresses are
// exchanged out of band, and Establish gets the final list.
func (s *Service) Establish(ctx context.Context, addrs []string) error {
	m := s.currentMesh()
	if addrs != nil {
		if len(addrs) != s.n {
			return fmt.Errorf("service: establish: %d addresses for n=%d", len(addrs), s.n)
		}
		s.meshMu.Lock()
		m.addrs = append([]string(nil), addrs...)
		s.meshMu.Unlock()
		for id, p := range m.peers {
			if p != nil {
				p.mu.Lock()
				p.addr = addrs[id]
				p.mu.Unlock()
			}
		}
	}
	ctx, cancel := context.WithTimeout(ctx, s.cfg.EstablishTimeout)
	defer cancel()
	for id := 0; id < s.cfg.ID; id++ {
		p := m.peers[id]
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			p.mu.Lock()
			addr := p.addr
			p.mu.Unlock()
			conn, err := p.dialRetry(ctx, addr)
			if err != nil {
				return // Establish's ready-wait reports the timeout
			}
			p.install(conn)
		}()
	}
	for id, p := range m.peers {
		if p == nil {
			continue
		}
		select {
		case <-p.ready:
		case <-ctx.Done():
			return fmt.Errorf("service: establish: peer %d not connected: %w", id, ctx.Err())
		case <-s.stop:
			return ErrServiceClosed
		}
	}
	return nil
}

// dialRetry dials the peer until a connection establishes (transport
// dial plus client handshake) or ctx expires, with jittered capped
// exponential backoff between attempts — peers come up in any order.
func (p *peerLink) dialRetry(ctx context.Context, addr string) (net.Conn, error) {
	s := p.svc
	backoff := s.cfg.DialBackoff
	for {
		conn, err := s.tr.Dial(ctx, p.id, addr)
		if err == nil {
			_ = conn.SetDeadline(s.handshakeDeadline())
			if err = s.clientHandshake(conn, p.id, p.curEpoch()); err == nil {
				_ = conn.SetDeadline(time.Time{})
				return conn, nil
			}
			_ = conn.Close()
		}
		sleep := p.noteDialFail(backoff)
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(sleep):
		}
		if backoff *= 2; backoff > s.cfg.MaxDialBackoff {
			backoff = s.cfg.MaxDialBackoff
		}
	}
}
