package service

import (
	"context"
	"net"
)

// Transport is the network surface the service builds its mesh on. The
// default (nil Config.Transport) is plain TCP; fault-injection layers
// (internal/chaos.Injector) implement the same surface to subject the
// mesh to hostile networks without the service knowing.
type Transport interface {
	// Listen opens this process's mesh listener.
	Listen(addr string) (net.Listener, error)
	// Dial connects to peer at addr; ctx carries the attempt deadline.
	Dial(ctx context.Context, peer int, addr string) (net.Conn, error)
	// Accepted wraps an inbound conn once the handshake has identified
	// the dialing peer (the acceptor only learns the peer id from the
	// Hello frame); return conn unchanged for no wrapping.
	Accepted(peer int, conn net.Conn) net.Conn
}

// netTransport is the default plain-TCP transport.
type netTransport struct{}

func (netTransport) Listen(addr string) (net.Listener, error) { return net.Listen("tcp", addr) }

func (netTransport) Dial(ctx context.Context, _ int, addr string) (net.Conn, error) {
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr)
}

func (netTransport) Accepted(_ int, conn net.Conn) net.Conn { return conn }
