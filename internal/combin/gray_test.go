package combin

import (
	"fmt"
	"sort"
	"testing"
)

// TestGrayCombinationsCoversAll checks that the revolving-door order visits
// every k-subset exactly once, in ascending index order, with consecutive
// subsets differing by exactly one swap.
func TestGrayCombinationsCoversAll(t *testing.T) {
	for n := 0; n <= 9; n++ {
		for k := 0; k <= n; k++ {
			seen := make(map[string]bool)
			var prev []int
			count := 0
			err := GrayCombinations(n, k, func(idx []int, out, in int) bool {
				count++
				if !sort.IntsAreSorted(idx) {
					t.Fatalf("n=%d k=%d: unsorted subset %v", n, k, idx)
				}
				key := fmt.Sprint(idx)
				if seen[key] {
					t.Fatalf("n=%d k=%d: subset %v visited twice", n, k, idx)
				}
				seen[key] = true
				if prev == nil {
					if out != -1 || in != -1 {
						t.Fatalf("n=%d k=%d: first subset carries swap (%d,%d)", n, k, out, in)
					}
				} else {
					diff := symmetricDiff(prev, idx)
					if len(diff) != 2 {
						t.Fatalf("n=%d k=%d: %v → %v is not a single swap", n, k, prev, idx)
					}
					if !contains(prev, out) || contains(idx, out) || !contains(idx, in) || contains(prev, in) {
						t.Fatalf("n=%d k=%d: reported swap (%d,%d) does not match %v → %v", n, k, out, in, prev, idx)
					}
				}
				prev = append(prev[:0], idx...)
				return true
			})
			if err != nil {
				t.Fatalf("n=%d k=%d: %v", n, k, err)
			}
			if want := Binomial(n, k); int64(count) != want {
				t.Fatalf("n=%d k=%d: visited %d subsets, want %d", n, k, count, want)
			}
		}
	}
}

func TestGrayCombinationsEarlyStop(t *testing.T) {
	count := 0
	err := GrayCombinations(6, 3, func(idx []int, out, in int) bool {
		count++
		return count < 4
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 4 {
		t.Fatalf("early stop visited %d subsets, want 4", count)
	}
}

func TestGrayCombinationsInvalid(t *testing.T) {
	if err := GrayCombinations(3, 4, func([]int, int, int) bool { return true }); err == nil {
		t.Fatal("want error for k > n")
	}
	if err := GrayCombinations(-1, 0, func([]int, int, int) bool { return true }); err == nil {
		t.Fatal("want error for n < 0")
	}
}

// TestRankRoundTrip checks Rank is the inverse of Unrank and agrees with the
// lexicographic enumeration order.
func TestRankRoundTrip(t *testing.T) {
	for n := 1; n <= 9; n++ {
		for k := 0; k <= n; k++ {
			want := int64(0)
			err := Combinations(n, k, func(idx []int) bool {
				r, err := Rank(n, idx)
				if err != nil {
					t.Fatalf("rank(%v): %v", idx, err)
				}
				if r != want {
					t.Fatalf("n=%d k=%d: rank(%v)=%d, want %d", n, k, idx, r, want)
				}
				back, err := Unrank(n, k, r, nil)
				if err != nil {
					t.Fatalf("unrank(%d): %v", r, err)
				}
				for i := range idx {
					if back[i] != idx[i] {
						t.Fatalf("unrank(rank(%v)) = %v", idx, back)
					}
				}
				want++
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := Rank(4, []int{2, 1}); err == nil {
		t.Fatal("want error for non-ascending index set")
	}
	if _, err := Rank(4, []int{1, 4}); err == nil {
		t.Fatal("want error for out-of-range index")
	}
}

func symmetricDiff(a, b []int) []int {
	inA := make(map[int]bool, len(a))
	for _, v := range a {
		inA[v] = true
	}
	inB := make(map[int]bool, len(b))
	for _, v := range b {
		inB[v] = true
	}
	var out []int
	for _, v := range a {
		if !inB[v] {
			out = append(out, v)
		}
	}
	for _, v := range b {
		if !inA[v] {
			out = append(out, v)
		}
	}
	return out
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
