package combin

import "fmt"

// GrayCombinations enumerates every k-subset of {0, …, n−1} in revolving-door
// (Gray) order: consecutive subsets differ by exactly one element swap. fn is
// invoked once per subset with the current index set in ascending order plus
// the element swapped out and the element swapped in relative to the previous
// subset (−1/−1 on the first subset). Returning false stops the enumeration.
//
// The swap structure is what makes the order useful: a consumer holding
// per-subset state (a constraint family, a simplex basis) can update it
// incrementally instead of rebuilding it per subset. The sequence is the
// classic Nijenhuis–Wilf ordering, generated recursively as
//
//	A(n, k) = A(n−1, k) ++ [S ∪ {n−1} : S ∈ reverse(A(n−1, k−1))]
//
// and is deterministic. The callback's idx slice is reused; callers must not
// retain it.
func GrayCombinations(n, k int, fn func(idx []int, out, in int) bool) error {
	if n < 0 || k < 0 || k > n {
		return fmt.Errorf("combin: invalid combination parameters n=%d k=%d", n, k)
	}
	// Current subset, kept in ascending order across swaps.
	cur := make([]int, k)
	for i := range cur {
		cur[i] = i
	}
	g := &grayState{cur: cur, fn: fn}
	if !g.fn(g.cur, -1, -1) {
		return nil
	}
	g.emit(n, k, false)
	return nil
}

// grayState carries the enumeration state: the sorted current subset and the
// user callback. stop latches a false return from the callback.
type grayState struct {
	cur  []int
	fn   func(idx []int, out, in int) bool
	stop bool
}

// swap replaces element out with element in, keeping cur sorted, and emits
// the resulting subset.
func (g *grayState) swap(out, in int) {
	if g.stop {
		return
	}
	// Remove out.
	i := 0
	for g.cur[i] != out {
		i++
	}
	copy(g.cur[i:], g.cur[i+1:])
	g.cur = g.cur[:len(g.cur)-1]
	// Insert in at its sorted position.
	j := len(g.cur)
	g.cur = append(g.cur, 0)
	for j > 0 && g.cur[j-1] > in {
		g.cur[j] = g.cur[j-1]
		j--
	}
	g.cur[j] = in
	if !g.fn(g.cur, out, in) {
		g.stop = true
	}
}

// emit walks the transition sequence of A(n, k) (or its reverse): the first
// subset is assumed current; every transition is a single swap.
//
// The recursion mirrors the construction above. Forward, A(n, k) runs
// A(n−1, k) first and crosses from its last subset {0…k−2, n−2} to the
// second half's first subset {0…k−3, n−2, n−1} — a single swap of k−2 (or,
// for k = 1, of n−2) for n−1 — then walks reverse(A(n−1, k−1)) holding n−1.
func (g *grayState) emit(n, k int, rev bool) {
	if g.stop || k <= 0 || k >= n {
		return // single-subset sequences have no transitions
	}
	// The element swapped out at the half boundary (forward direction):
	// k−2 when the first half ends at {0…k−2, n−2} with k ≥ 2, else n−2.
	out := k - 2
	if k == 1 {
		out = n - 2
	}
	if !rev {
		g.emit(n-1, k, false)
		g.swap(out, n-1)
		g.emit(n-1, k-1, true)
	} else {
		g.emit(n-1, k-1, false)
		g.swap(n-1, out)
		g.emit(n-1, k, true)
	}
}

// Rank returns the position of the ascending index set idx in the
// lexicographic enumeration of k-subsets of {0, …, n−1} — the inverse of
// Unrank. Consumers that compute subsets in a non-lexicographic order (for
// example GrayCombinations) use it to place results in the rank-ordered
// layout the deterministic reductions require.
func Rank(n int, idx []int) (int64, error) {
	k := len(idx)
	if k > n {
		return 0, fmt.Errorf("combin: rank of %d-subset of %d elements", k, n)
	}
	var r int64
	prev := -1
	for i, v := range idx {
		if v <= prev || v >= n {
			return 0, fmt.Errorf("combin: rank needs an ascending index set in [0,%d), got %v", n, idx)
		}
		// Count the subsets that agree on idx[:i] but pick a smaller element
		// at position i.
		for c := prev + 1; c < v; c++ {
			r += Binomial(n-c-1, k-i-1)
		}
		prev = v
	}
	return r, nil
}
