// Package combin provides the combinatorial enumeration primitives used by
// the consensus algorithms: k-subsets of an index range (the paper
// enumerates all (n−f)-size subsets T ⊆ S and C ⊆ Bi[t]), binomial
// coefficients, and ordered set partitions (used by the exhaustive Tverberg
// partition search).
package combin

import (
	"fmt"
	"math"
	"math/big"
)

// Binomial returns C(n, k). It returns 0 when k < 0 or k > n. The result
// saturates at math.MaxInt64 if it would overflow.
func Binomial(n, k int) int64 {
	if k < 0 || k > n || n < 0 {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	if n <= 40 {
		// Multiplicative formula, exact in int64 for n ≤ 40 (the largest
		// intermediate is C(40,20)·40 ≈ 5.5e12). This keeps the hot
		// enumeration/unranking paths free of big.Int allocation.
		var res int64 = 1
		for i := 1; i <= k; i++ {
			res = res * int64(n-k+i) / int64(i)
		}
		return res
	}
	z := new(big.Int).Binomial(int64(n), int64(k))
	if !z.IsInt64() {
		return math.MaxInt64
	}
	return z.Int64()
}

// Combinations calls fn with each k-subset of {0, 1, …, n−1} in
// lexicographic order. The slice passed to fn is reused between calls; fn
// must copy it if it retains it. Enumeration stops early if fn returns
// false. It returns an error for invalid k.
func Combinations(n, k int, fn func(indices []int) bool) error {
	if k < 0 || n < 0 || k > n {
		return fmt.Errorf("combin: invalid combination C(%d,%d)", n, k)
	}
	if k == 0 {
		fn([]int{})
		return nil
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		if !fn(idx) {
			return nil
		}
		// Advance to the next combination in lexicographic order.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return nil
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// Unrank writes the combination of lexicographic rank r (0-based, matching
// the enumeration order of Combinations) among the k-subsets of {0,…,n−1}
// into buf and returns it. buf is reused when it has capacity ≥ k. Unranking
// gives parallel consumers random access into the combination sequence
// without materializing it: workers pull ranks from a shared counter and
// reconstruct their subset in O(n).
func Unrank(n, k int, r int64, buf []int) ([]int, error) {
	if k < 0 || n < 0 || k > n {
		return nil, fmt.Errorf("combin: invalid combination C(%d,%d)", n, k)
	}
	if r < 0 || r >= Binomial(n, k) {
		return nil, fmt.Errorf("combin: rank %d out of range for C(%d,%d)", r, n, k)
	}
	if cap(buf) < k {
		buf = make([]int, k)
	}
	buf = buf[:k]
	x := 0
	for i := 0; i < k; i++ {
		for {
			// Combinations starting with x at position i: C(n−1−x, k−1−i).
			c := Binomial(n-1-x, k-1-i)
			if r < c {
				buf[i] = x
				x++
				break
			}
			r -= c
			x++
		}
	}
	return buf, nil
}

// AllCombinations materializes every k-subset of {0,…,n−1} in lexicographic
// order. Intended for small n; callers enumerating large spaces should use
// Combinations directly.
func AllCombinations(n, k int) ([][]int, error) {
	count := Binomial(n, k)
	if count > 1<<22 {
		return nil, fmt.Errorf("combin: refusing to materialize %d combinations", count)
	}
	out := make([][]int, 0, count)
	err := Combinations(n, k, func(idx []int) bool {
		c := make([]int, len(idx))
		copy(c, idx)
		out = append(out, c)
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Complement returns the elements of {0,…,n−1} not present in the sorted
// index slice sub. sub must be strictly increasing and within range.
func Complement(n int, sub []int) ([]int, error) {
	out := make([]int, 0, n-len(sub))
	j := 0
	for i := 0; i < n; i++ {
		if j < len(sub) && sub[j] == i {
			j++
			continue
		}
		out = append(out, i)
	}
	if j != len(sub) {
		return nil, fmt.Errorf("combin: subset %v is not a sorted subset of 0..%d", sub, n-1)
	}
	return out, nil
}

// Partitions calls fn with each partition of {0,…,n−1} into exactly b
// non-empty blocks. Blocks are presented in a canonical order (each block
// holds ascending indices; blocks are ordered by their smallest member).
// The outer and inner slices passed to fn are reused; copy to retain.
// Enumeration stops early if fn returns false.
//
// The number of such partitions is the Stirling number S(n,b); this is only
// tractable for small n and is used by the exhaustive Tverberg search and by
// tests validating the fast paths.
func Partitions(n, b int, fn func(blocks [][]int) bool) error {
	if n < 0 || b < 1 || b > n {
		return fmt.Errorf("combin: invalid partition of %d elements into %d blocks", n, b)
	}
	// assign[i] = block of element i, in restricted-growth form:
	// assign[0] = 0 and assign[i] ≤ max(assign[:i]) + 1.
	assign := make([]int, n)
	blocks := make([][]int, b)
	for i := range blocks {
		blocks[i] = make([]int, 0, n)
	}

	var rec func(i, maxUsed int) bool
	rec = func(i, maxUsed int) bool {
		if i == n {
			if maxUsed != b-1 {
				return true // not all blocks used; skip
			}
			for j := range blocks {
				blocks[j] = blocks[j][:0]
			}
			for e, blk := range assign {
				blocks[blk] = append(blocks[blk], e)
			}
			return fn(blocks)
		}
		// Elements remaining must still be able to fill all b blocks.
		limit := maxUsed + 1
		if limit > b-1 {
			limit = b - 1
		}
		for blk := 0; blk <= limit; blk++ {
			assign[i] = blk
			next := maxUsed
			if blk > maxUsed {
				next = blk
			}
			// Prune: blocks still unused must fit in remaining slots.
			if (b - 1 - next) > (n - 1 - i) {
				continue
			}
			if !rec(i+1, next) {
				return false
			}
		}
		return true
	}
	rec(1, 0) // element 0 is always in block 0
	return nil
}
