package combin

import (
	"math"
	"math/big"
	"reflect"
	"testing"
)

func TestBinomial(t *testing.T) {
	tests := []struct {
		n, k int
		want int64
	}{
		{0, 0, 1},
		{5, 0, 1},
		{5, 5, 1},
		{5, 2, 10},
		{7, 5, 21}, // the paper's Γ(S) subset count for n=7, f=2
		{10, 3, 120},
		{5, 6, 0},
		{5, -1, 0},
		{-1, 0, 0},
		{52, 26, 495918532948104},
	}
	for _, tt := range tests {
		if got := Binomial(tt.n, tt.k); got != tt.want {
			t.Errorf("Binomial(%d,%d) = %d, want %d", tt.n, tt.k, got, tt.want)
		}
	}
}

func TestBinomialSaturates(t *testing.T) {
	if got := Binomial(300, 150); got != math.MaxInt64 {
		t.Errorf("Binomial(300,150) = %d, want saturation", got)
	}
}

func TestCombinationsOrderAndCount(t *testing.T) {
	var got [][]int
	err := Combinations(4, 2, func(idx []int) bool {
		c := make([]int, len(idx))
		copy(c, idx)
		got = append(got, c)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Combinations(4,2) = %v, want %v", got, want)
	}
}

func TestCombinationsCountsMatchBinomial(t *testing.T) {
	for n := 0; n <= 9; n++ {
		for k := 0; k <= n; k++ {
			var count int64
			if err := Combinations(n, k, func([]int) bool { count++; return true }); err != nil {
				t.Fatalf("C(%d,%d): %v", n, k, err)
			}
			if want := Binomial(n, k); count != want {
				t.Errorf("C(%d,%d): enumerated %d, binomial %d", n, k, count, want)
			}
		}
	}
}

func TestCombinationsEarlyStop(t *testing.T) {
	var count int
	err := Combinations(6, 3, func([]int) bool {
		count++
		return count < 4
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 4 {
		t.Errorf("stopped after %d calls, want 4", count)
	}
}

func TestCombinationsInvalid(t *testing.T) {
	if err := Combinations(3, 5, func([]int) bool { return true }); err == nil {
		t.Error("k > n: expected error")
	}
	if err := Combinations(-1, 0, func([]int) bool { return true }); err == nil {
		t.Error("n < 0: expected error")
	}
}

func TestCombinationsZeroK(t *testing.T) {
	calls := 0
	if err := Combinations(5, 0, func(idx []int) bool {
		calls++
		if len(idx) != 0 {
			t.Errorf("want empty combination, got %v", idx)
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("C(5,0) enumerated %d times, want 1", calls)
	}
}

func TestAllCombinations(t *testing.T) {
	got, err := AllCombinations(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Errorf("len = %d, want 10", len(got))
	}
	// Each must be strictly increasing and independent storage.
	for _, c := range got {
		for i := 1; i < len(c); i++ {
			if c[i] <= c[i-1] {
				t.Errorf("combination %v not increasing", c)
			}
		}
	}
	got[0][0] = 99
	if got[1][0] == 99 {
		t.Error("combinations share storage")
	}
}

func TestAllCombinationsRefusesHuge(t *testing.T) {
	if _, err := AllCombinations(60, 30); err == nil {
		t.Error("expected refusal for huge enumeration")
	}
}

func TestComplement(t *testing.T) {
	got, err := Complement(5, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{0, 2, 4}) {
		t.Errorf("Complement = %v", got)
	}
}

func TestComplementFull(t *testing.T) {
	got, err := Complement(3, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("Complement = %v, want empty", got)
	}
}

func TestComplementEmptySubset(t *testing.T) {
	got, err := Complement(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("Complement = %v", got)
	}
}

func TestComplementInvalid(t *testing.T) {
	if _, err := Complement(3, []int{5}); err == nil {
		t.Error("out of range: expected error")
	}
	if _, err := Complement(3, []int{1, 1}); err == nil {
		t.Error("duplicate: expected error")
	}
}

// stirling computes S(n,b) by recurrence for cross-checking Partitions.
func stirling(n, b int) int {
	if n == 0 && b == 0 {
		return 1
	}
	if n == 0 || b == 0 || b > n {
		return 0
	}
	return b*stirling(n-1, b) + stirling(n-1, b-1)
}

func TestPartitionsCountsMatchStirling(t *testing.T) {
	for n := 1; n <= 7; n++ {
		for b := 1; b <= n; b++ {
			count := 0
			err := Partitions(n, b, func([][]int) bool { count++; return true })
			if err != nil {
				t.Fatalf("Partitions(%d,%d): %v", n, b, err)
			}
			if want := stirling(n, b); count != want {
				t.Errorf("Partitions(%d,%d) = %d blocks, want S = %d", n, b, count, want)
			}
		}
	}
}

func TestPartitionsBlocksAreValid(t *testing.T) {
	n, b := 6, 3
	seen := make(map[string]bool)
	err := Partitions(n, b, func(blocks [][]int) bool {
		// Every element exactly once; every block non-empty.
		present := make([]bool, n)
		key := ""
		for _, blk := range blocks {
			if len(blk) == 0 {
				t.Fatal("empty block")
			}
			for _, e := range blk {
				if present[e] {
					t.Fatalf("element %d appears twice", e)
				}
				present[e] = true
			}
			key += "|"
			for _, e := range blk {
				key += string(rune('a' + e))
			}
		}
		for e, p := range present {
			if !p {
				t.Fatalf("element %d missing", e)
			}
		}
		if seen[key] {
			t.Fatalf("duplicate partition %s", key)
		}
		seen[key] = true
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPartitionsEarlyStop(t *testing.T) {
	count := 0
	if err := Partitions(6, 2, func([][]int) bool {
		count++
		return count < 3
	}); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Errorf("stopped after %d, want 3", count)
	}
}

func TestPartitionsInvalid(t *testing.T) {
	if err := Partitions(3, 0, func([][]int) bool { return true }); err == nil {
		t.Error("b=0: expected error")
	}
	if err := Partitions(2, 3, func([][]int) bool { return true }); err == nil {
		t.Error("b>n: expected error")
	}
}

func TestPartitionsSingle(t *testing.T) {
	count := 0
	if err := Partitions(1, 1, func(blocks [][]int) bool {
		count++
		if len(blocks) != 1 || len(blocks[0]) != 1 || blocks[0][0] != 0 {
			t.Errorf("blocks = %v", blocks)
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Errorf("count = %d, want 1", count)
	}
}

func TestUnrankMatchesEnumeration(t *testing.T) {
	for _, c := range []struct{ n, k int }{{5, 2}, {7, 5}, {9, 3}, {6, 6}, {4, 1}, {3, 0}} {
		var rank int64
		buf := make([]int, c.k)
		err := Combinations(c.n, c.k, func(idx []int) bool {
			got, err := Unrank(c.n, c.k, rank, buf)
			if err != nil {
				t.Fatalf("Unrank(%d,%d,%d): %v", c.n, c.k, rank, err)
			}
			for i := range idx {
				if got[i] != idx[i] {
					t.Fatalf("Unrank(%d,%d,%d) = %v, enumeration gives %v", c.n, c.k, rank, got, idx)
				}
			}
			rank++
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if rank != Binomial(c.n, c.k) {
			t.Fatalf("enumerated %d combinations, want C(%d,%d)=%d", rank, c.n, c.k, Binomial(c.n, c.k))
		}
	}
}

func TestUnrankErrors(t *testing.T) {
	if _, err := Unrank(5, 2, 10, nil); err == nil {
		t.Error("rank = C(5,2): expected out-of-range error")
	}
	if _, err := Unrank(5, 2, -1, nil); err == nil {
		t.Error("negative rank: expected error")
	}
	if _, err := Unrank(2, 3, 0, nil); err == nil {
		t.Error("k > n: expected error")
	}
}

func TestBinomialSmallNPathMatchesBig(t *testing.T) {
	// The int64 fast path (n ≤ 40) must agree with the big.Int reference.
	for n := 0; n <= 40; n++ {
		for k := 0; k <= n; k++ {
			want := new(big.Int).Binomial(int64(n), int64(k))
			if got := Binomial(n, k); !want.IsInt64() || got != want.Int64() {
				t.Fatalf("Binomial(%d,%d) = %d, want %s", n, k, got, want)
			}
		}
	}
}
