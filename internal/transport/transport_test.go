package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

type tcpPayload struct {
	Seq int
	Tag string
}

func init() {
	wire.Register(tcpPayload{})
}

func TestInProcBasic(t *testing.T) {
	trs, err := NewInProcNetwork(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := trs[0].Send(1, "hello"); err != nil {
		t.Fatal(err)
	}
	from, payload, err := trs[1].Recv()
	if err != nil {
		t.Fatal(err)
	}
	if from != 0 || payload != "hello" {
		t.Errorf("got (%d, %v)", from, payload)
	}
}

func TestInProcInvalidSize(t *testing.T) {
	if _, err := NewInProcNetwork(0); err == nil {
		t.Error("n=0: expected error")
	}
}

func TestInProcSelfSend(t *testing.T) {
	trs, err := NewInProcNetwork(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := trs[0].Send(0, 42); err != nil {
		t.Fatal(err)
	}
	from, payload, err := trs[0].Recv()
	if err != nil || from != 0 || payload != 42 {
		t.Errorf("(%d, %v, %v)", from, payload, err)
	}
}

func TestInProcFIFOPerLink(t *testing.T) {
	trs, err := NewInProcNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	const k = 1000
	for i := 0; i < k; i++ {
		if err := trs[0].Send(1, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < k; i++ {
		_, payload, err := trs[1].Recv()
		if err != nil {
			t.Fatal(err)
		}
		if payload != i {
			t.Fatalf("FIFO violated: got %v at position %d", payload, i)
		}
	}
}

func TestInProcConcurrentSenders(t *testing.T) {
	trs, err := NewInProcNetwork(4)
	if err != nil {
		t.Fatal(err)
	}
	const per = 200
	var wg sync.WaitGroup
	for s := 1; s < 4; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := trs[s].Send(0, [2]int{s, i}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}()
	}
	seen := make(map[int]int) // sender → next expected seq
	for i := 0; i < 3*per; i++ {
		_, payload, err := trs[0].Recv()
		if err != nil {
			t.Fatal(err)
		}
		p := payload.([2]int)
		if p[1] != seen[p[0]] {
			t.Fatalf("per-sender FIFO violated: sender %d seq %d, want %d", p[0], p[1], seen[p[0]])
		}
		seen[p[0]]++
	}
	wg.Wait()
}

func TestInProcInvalidDestination(t *testing.T) {
	trs, err := NewInProcNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := trs[0].Send(5, "x"); err == nil {
		t.Error("invalid destination: expected error")
	}
}

func TestInProcCloseUnblocksRecv(t *testing.T) {
	trs, err := NewInProcNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, _, err := trs[0].Recv()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if err := trs[0].Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
}

func TestInProcSendToClosedPeer(t *testing.T) {
	trs, err := NewInProcNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := trs[1].Close(); err != nil {
		t.Fatal(err)
	}
	if err := trs[0].Send(1, "x"); !errors.Is(err, ErrPeerClosed) {
		t.Errorf("err = %v, want ErrPeerClosed", err)
	}
}

func TestInProcSendAfterOwnClose(t *testing.T) {
	trs, err := NewInProcNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := trs[0].Close(); err != nil {
		t.Fatal(err)
	}
	if err := trs[0].Send(1, "x"); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
}

func TestInProcDrainAfterClose(t *testing.T) {
	// Messages queued before Close are still receivable.
	trs, err := NewInProcNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := trs[0].Send(1, "queued"); err != nil {
		t.Fatal(err)
	}
	if err := trs[1].Close(); err != nil {
		t.Fatal(err)
	}
	_, payload, err := trs[1].Recv()
	if err != nil || payload != "queued" {
		t.Errorf("(%v, %v), want queued message", payload, err)
	}
	if _, _, err := trs[1].Recv(); !errors.Is(err, ErrClosed) {
		t.Errorf("after drain: err = %v, want ErrClosed", err)
	}
}

// buildTCPMesh creates an n-node loopback TCP mesh on ephemeral ports.
func buildTCPMesh(t *testing.T, n int) []*TCPNode {
	t.Helper()
	nodes := make([]*TCPNode, n)
	addrs := make([]string, n)
	tmpl := make([]string, n)
	for i := range tmpl {
		tmpl[i] = "127.0.0.1:0"
	}
	for i := 0; i < n; i++ {
		nd, err := NewTCP(TCPConfig{ID: i, Addrs: tmpl, EstablishTimeout: 5 * time.Second})
		if err != nil {
			t.Fatalf("NewTCP(%d): %v", i, err)
		}
		nodes[i] = nd
		addrs[i] = nd.Addr()
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = nodes[i].Establish(context.Background(), addrs)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("Establish(%d): %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			_ = nd.Close()
		}
	})
	return nodes
}

func TestTCPMeshAllPairs(t *testing.T) {
	const n = 3
	nodes := buildTCPMesh(t, n)
	// Every ordered pair exchanges one message.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			tag := fmt.Sprintf("%d->%d", i, j)
			if err := nodes[i].Send(j, tcpPayload{Tag: tag}); err != nil {
				t.Fatalf("send %s: %v", tag, err)
			}
		}
	}
	for j := 0; j < n; j++ {
		got := make(map[string]bool)
		for k := 0; k < n; k++ {
			from, payload, err := nodes[j].Recv()
			if err != nil {
				t.Fatalf("recv at %d: %v", j, err)
			}
			p := payload.(tcpPayload)
			want := fmt.Sprintf("%d->%d", from, j)
			if p.Tag != want {
				t.Errorf("node %d: tag %q from %d, want %q", j, p.Tag, from, want)
			}
			got[p.Tag] = true
		}
		if len(got) != n {
			t.Errorf("node %d received %d distinct messages, want %d", j, len(got), n)
		}
	}
}

func TestTCPFIFO(t *testing.T) {
	nodes := buildTCPMesh(t, 2)
	const k = 500
	go func() {
		for i := 0; i < k; i++ {
			if err := nodes[0].Send(1, tcpPayload{Seq: i}); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < k; i++ {
		_, payload, err := nodes[1].Recv()
		if err != nil {
			t.Fatal(err)
		}
		if got := payload.(tcpPayload).Seq; got != i {
			t.Fatalf("FIFO violated: got %d at %d", got, i)
		}
	}
}

func TestTCPCloseUnblocks(t *testing.T) {
	nodes := buildTCPMesh(t, 2)
	done := make(chan error, 1)
	go func() {
		_, _, err := nodes[0].Recv()
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if err := nodes[0].Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("err = %v, want ErrClosed", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("Recv did not unblock")
	}
}

func TestTCPInvalidConfig(t *testing.T) {
	if _, err := NewTCP(TCPConfig{ID: 5, Addrs: []string{"127.0.0.1:0"}}); err == nil {
		t.Error("id out of range: expected error")
	}
}

func TestTCPSelfSend(t *testing.T) {
	nodes := buildTCPMesh(t, 2)
	if err := nodes[0].Send(0, tcpPayload{Tag: "self"}); err != nil {
		t.Fatal(err)
	}
	from, payload, err := nodes[0].Recv()
	if err != nil || from != 0 || payload.(tcpPayload).Tag != "self" {
		t.Errorf("(%d, %v, %v)", from, payload, err)
	}
}
