package transport

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"syscall"
	"time"

	"repro/internal/wire"
)

// TCP transport defaults.
const (
	defaultDialRetry   = 25 * time.Millisecond
	defaultEstablishTO = 10 * time.Second
)

// TCPConfig configures one process's endpoint of a TCP full mesh.
type TCPConfig struct {
	// ID is this process's id (index into Addrs).
	ID int
	// Addrs lists each process's listen address ("host:port"), indexed by
	// process id. Addrs[ID] may use port 0; the actual address is
	// available from Addr after NewTCP.
	Addrs []string
	// EstablishTimeout bounds mesh setup (default 10s).
	EstablishTimeout time.Duration
}

// TCPNode is a Transport over a TCP full mesh: one connection per peer
// pair, the higher id dialing the lower. Per-connection reader goroutines
// preserve per-link FIFO order; frames are wire envelopes.
type TCPNode struct {
	cfg      TCPConfig
	listener net.Listener

	mu     sync.Mutex
	conns  map[int]net.Conn
	wmu    map[int]*sync.Mutex
	closed bool

	inbox  chan item
	errs   chan error
	wg     sync.WaitGroup
	stopCh chan struct{}
}

var _ Transport = (*TCPNode)(nil)

// NewTCP opens this process's listener. Establish must be called next, once
// all processes' listeners are up.
func NewTCP(cfg TCPConfig) (*TCPNode, error) {
	if cfg.ID < 0 || cfg.ID >= len(cfg.Addrs) {
		return nil, fmt.Errorf("transport: id %d out of range for %d addresses", cfg.ID, len(cfg.Addrs))
	}
	if cfg.EstablishTimeout <= 0 {
		cfg.EstablishTimeout = defaultEstablishTO
	}
	ln, err := net.Listen("tcp", cfg.Addrs[cfg.ID])
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", cfg.Addrs[cfg.ID], err)
	}
	return &TCPNode{
		cfg:      cfg,
		listener: ln,
		conns:    make(map[int]net.Conn, len(cfg.Addrs)),
		wmu:      make(map[int]*sync.Mutex, len(cfg.Addrs)),
		inbox:    make(chan item, 1024),
		errs:     make(chan error, len(cfg.Addrs)),
		stopCh:   make(chan struct{}),
	}, nil
}

// Addr returns the actual listen address (useful with port 0).
func (t *TCPNode) Addr() string { return t.listener.Addr().String() }

// Establish builds the full mesh: this node accepts connections from every
// higher-id peer and dials every lower-id peer. It blocks until the mesh is
// complete or the timeout/context expires.
func (t *TCPNode) Establish(ctx context.Context, addrs []string) error {
	if addrs == nil {
		addrs = t.cfg.Addrs
	}
	n := len(addrs)
	deadline := time.Now().Add(t.cfg.EstablishTimeout)
	ctx, cancel := context.WithDeadline(ctx, deadline)
	defer cancel()

	expectAccept := n - 1 - t.cfg.ID // peers with higher id dial us
	type accepted struct {
		peer int
		conn net.Conn
		err  error
	}
	acceptCh := make(chan accepted, expectAccept)
	go func() {
		for i := 0; i < expectAccept; i++ {
			conn, err := t.listener.Accept()
			if err != nil {
				acceptCh <- accepted{err: err}
				return
			}
			// Handshake: the dialer sends its id as one frame.
			frame, err := wire.ReadFrame(conn)
			if err != nil || len(frame) != 4 {
				_ = conn.Close()
				acceptCh <- accepted{err: fmt.Errorf("transport: bad handshake: %v", err)}
				return
			}
			peer := int(uint32(frame[0])<<24 | uint32(frame[1])<<16 | uint32(frame[2])<<8 | uint32(frame[3]))
			acceptCh <- accepted{peer: peer, conn: conn}
		}
	}()

	// Dial every lower-id peer, retrying until its listener is up.
	for peer := 0; peer < t.cfg.ID; peer++ {
		conn, err := dialRetry(ctx, addrs[peer])
		if err != nil {
			return fmt.Errorf("transport: dial peer %d at %s: %w", peer, addrs[peer], err)
		}
		id := uint32(t.cfg.ID)
		hs := []byte{byte(id >> 24), byte(id >> 16), byte(id >> 8), byte(id)}
		if err := wire.WriteFrame(conn, hs); err != nil {
			_ = conn.Close()
			return fmt.Errorf("transport: handshake with peer %d: %w", peer, err)
		}
		t.addConn(peer, conn)
	}

	for i := 0; i < expectAccept; i++ {
		select {
		case acc := <-acceptCh:
			if acc.err != nil {
				return acc.err
			}
			if acc.peer <= t.cfg.ID || acc.peer >= n {
				_ = acc.conn.Close()
				return fmt.Errorf("transport: unexpected handshake id %d", acc.peer)
			}
			t.addConn(acc.peer, acc.conn)
		case <-ctx.Done():
			return fmt.Errorf("transport: mesh establish: %w", ctx.Err())
		}
	}
	return nil
}

func dialRetry(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	for {
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			return conn, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(defaultDialRetry):
		}
	}
}

// addConn registers a peer connection and starts its reader goroutine.
func (t *TCPNode) addConn(peer int, conn net.Conn) {
	t.mu.Lock()
	t.conns[peer] = conn
	t.wmu[peer] = &sync.Mutex{}
	t.mu.Unlock()

	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		for {
			frame, err := wire.ReadFrame(conn)
			if err != nil {
				// A peer closing its endpoint looks like a crashed
				// process, which the consensus protocols tolerate by
				// design; only surface unexpected failures. A close with
				// unread buffered data surfaces as ECONNRESET rather
				// than a clean EOF.
				if errors.Is(err, io.EOF) || errors.Is(err, syscall.ECONNRESET) {
					return
				}
				select {
				case <-t.stopCh: // clean shutdown
				default:
					t.errs <- fmt.Errorf("transport: read from peer %d: %w", peer, err)
				}
				return
			}
			env, err := wire.Decode(frame)
			if err != nil {
				t.errs <- err
				return
			}
			select {
			case t.inbox <- item{from: peer, payload: env.Payload}:
			case <-t.stopCh:
				return
			}
		}
	}()
}

// Send implements Transport. Self-sends short-circuit through the inbox.
func (t *TCPNode) Send(to int, payload any) error {
	if to == t.cfg.ID {
		select {
		case t.inbox <- item{from: to, payload: payload}:
			return nil
		case <-t.stopCh:
			return ErrClosed
		}
	}
	t.mu.Lock()
	conn, ok := t.conns[to]
	mu := t.wmu[to]
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if !ok {
		return fmt.Errorf("transport: no connection to peer %d", to)
	}
	frame, err := wire.Encode(&wire.Envelope{From: t.cfg.ID, Payload: payload})
	if err != nil {
		return err
	}
	mu.Lock()
	defer mu.Unlock()
	if err := wire.WriteFrame(conn, frame); err != nil {
		// A write failure on an established mesh connection means the
		// peer went away (decided and closed, or crashed) — exactly the
		// fault the consensus protocols tolerate. Surface it as
		// ErrPeerClosed, preserving the cause for diagnostics.
		return fmt.Errorf("%w: %v", ErrPeerClosed, err)
	}
	return nil
}

// Recv implements Transport.
func (t *TCPNode) Recv() (int, any, error) {
	select {
	case it := <-t.inbox:
		return it.from, it.payload, nil
	case err := <-t.errs:
		return 0, nil, err
	case <-t.stopCh:
		return 0, nil, ErrClosed
	}
}

// Close implements Transport: it tears down the listener, all connections,
// and the reader goroutines.
func (t *TCPNode) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	close(t.stopCh)
	err := t.listener.Close()
	for _, c := range t.conns {
		_ = c.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
	if err != nil && !errors.Is(err, net.ErrClosed) {
		return err
	}
	return nil
}
