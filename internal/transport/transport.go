// Package transport provides live reliable-FIFO links between processes:
// an in-process implementation (goroutines and queues) and a TCP
// implementation (full mesh over the standard net package). Both satisfy
// the paper's channel model — reliable, FIFO, complete graph — and both
// plug into internal/runtime to host the same event-driven nodes that run
// on the deterministic simulator.
package transport

import (
	"errors"
	"fmt"
	"sync"
)

// ErrClosed is returned by operations on a closed endpoint. Sends to a
// closed *peer* are reported with ErrPeerClosed so callers can treat them
// like sends to a crashed process (which the protocols tolerate by design).
var (
	ErrClosed     = errors.New("transport: endpoint closed")
	ErrPeerClosed = errors.New("transport: peer endpoint closed")
)

// Transport is one process's endpoint of the complete network graph.
type Transport interface {
	// Send enqueues payload on the FIFO link to process `to`.
	Send(to int, payload any) error
	// Recv blocks until a message arrives and returns it with its sender.
	Recv() (from int, payload any, err error)
	// Close releases the endpoint; pending and future Recv calls fail.
	Close() error
}

// item is one queued in-proc message.
type item struct {
	from    int
	payload any
}

// inprocEndpoint is an unbounded FIFO mailbox guarded by a mutex+cond.
// Unbounded capacity models the paper's reliable channels: a sender is
// never blocked by a slow receiver (back-pressure would create artificial
// synchrony).
type inprocEndpoint struct {
	id  int
	hub *inprocHub

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []item
	closed bool
}

// inprocHub connects n in-proc endpoints.
type inprocHub struct {
	endpoints []*inprocEndpoint
}

// NewInProcNetwork returns n connected in-process endpoints, one per id.
func NewInProcNetwork(n int) ([]Transport, error) {
	if n <= 0 {
		return nil, fmt.Errorf("transport: invalid network size %d", n)
	}
	hub := &inprocHub{endpoints: make([]*inprocEndpoint, n)}
	out := make([]Transport, n)
	for i := 0; i < n; i++ {
		ep := &inprocEndpoint{id: i, hub: hub}
		ep.cond = sync.NewCond(&ep.mu)
		hub.endpoints[i] = ep
		out[i] = ep
	}
	return out, nil
}

// Send implements Transport.
func (e *inprocEndpoint) Send(to int, payload any) error {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if to < 0 || to >= len(e.hub.endpoints) {
		return fmt.Errorf("transport: unknown destination %d", to)
	}
	dst := e.hub.endpoints[to]
	dst.mu.Lock()
	defer dst.mu.Unlock()
	if dst.closed {
		return ErrPeerClosed
	}
	dst.queue = append(dst.queue, item{from: e.id, payload: payload})
	dst.cond.Signal()
	return nil
}

// Recv implements Transport.
func (e *inprocEndpoint) Recv() (int, any, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for len(e.queue) == 0 && !e.closed {
		e.cond.Wait()
	}
	if len(e.queue) == 0 && e.closed {
		return 0, nil, ErrClosed
	}
	it := e.queue[0]
	e.queue = e.queue[1:]
	return it.from, it.payload, nil
}

// Close implements Transport.
func (e *inprocEndpoint) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	e.cond.Broadcast()
	return nil
}
