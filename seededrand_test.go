package bvc

import "testing"

// TestSeededRandDistinctSeeds pins the PR 2 fix for adversary PRNG streams:
// seededRand must mix BOTH the master seed and the adversary id, so distinct
// master seeds give an adversary distinct randomness (the original stream
// derivation dropped the seed, replaying identical adversary behaviour
// across seeds), and distinct adversaries never share a stream under one
// seed. No test pinned the fix until now.
func TestSeededRandDistinctSeeds(t *testing.T) {
	draws := func(seed int64, id int) [4]int64 {
		rng := seededRand(seed, id)
		var out [4]int64
		for i := range out {
			out[i] = rng.Int63()
		}
		return out
	}
	for _, id := range []int{0, 1, 3, 12} {
		a, b := draws(1, id), draws(2, id)
		if a == b {
			t.Errorf("adversary %d draws identical streams for seeds 1 and 2: %v", id, a)
		}
	}
	for _, seed := range []int64{1, 7, 42} {
		byID := make(map[[4]int64]int)
		for id := 0; id < 16; id++ {
			d := draws(seed, id)
			if prev, dup := byID[d]; dup {
				t.Errorf("seed %d: adversaries %d and %d share a stream", seed, prev, id)
			}
			byID[d] = id
		}
	}
	// Replays stay deterministic: the same (seed, id) must reproduce.
	if draws(5, 2) != draws(5, 2) {
		t.Error("seededRand is not deterministic for a fixed (seed, id)")
	}
}
