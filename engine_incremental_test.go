package bvc_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro"
)

// TestIncrementalGammaMatchesFromScratch: the incremental Γ engine — the
// sub-family (prefix) memo, the round-level AverageGamma memo, and every
// warm-started solve behind them — must reproduce the from-scratch ladder
// bit for bit. The reference execution runs with the Γ cache disabled and
// one worker (every candidate set solved from scratch, serially); it is
// compared against cached executions for workers ∈ {1, 4, GOMAXPROCS},
// across all four protocol variants × the six adversary strategies,
// extending the PR 1 (engine options) and PR 2 (node workers) determinism
// suites. The cached runs must also actually exercise the incremental path
// (nonzero reuse counters) — a silently cold cache would make this test
// vacuous.
func TestIncrementalGammaMatchesFromScratch(t *testing.T) {
	workerSets := []int{1, 4, runtime.GOMAXPROCS(0)}

	adversaries := []struct {
		name string
		mk   func(n, d int) []bvc.Byzantine
	}{
		{"none", func(int, int) []bvc.Byzantine { return nil }},
		{"silent", func(n, d int) []bvc.Byzantine {
			return []bvc.Byzantine{{ID: n - 1, Strategy: bvc.StrategySilent}}
		}},
		{"crash", func(n, d int) []bvc.Byzantine {
			return []bvc.Byzantine{{ID: n - 1, Strategy: bvc.StrategyCrash, CrashAfter: 1}}
		}},
		{"equivocate", func(n, d int) []bvc.Byzantine {
			lo := make(bvc.Vector, d)
			hi := make(bvc.Vector, d)
			for i := range hi {
				hi[i] = 1
			}
			return []bvc.Byzantine{{ID: n - 1, Strategy: bvc.StrategyEquivocate, Target: lo, Target2: hi}}
		}},
		{"random", func(n, d int) []bvc.Byzantine {
			return []bvc.Byzantine{{ID: n - 1, Strategy: bvc.StrategyRandom}}
		}},
		{"lure", func(n, d int) []bvc.Byzantine {
			hi := make(bvc.Vector, d)
			for i := range hi {
				hi[i] = 1
			}
			return []bvc.Byzantine{{ID: n - 1, Strategy: bvc.StrategyLure, Target: hi}}
		}},
	}

	type variantCase struct {
		name string
		d, f int
		n    int // 0 → tight bound
		run  func(cfg bvc.Config, inputs []bvc.Vector, byz []bvc.Byzantine, opts bvc.SimOptions) (*bvc.Result, error)
		cfg  func(n, d, f int) bvc.Config
	}
	variants := []variantCase{
		{
			// f = 2 so Γ(S) routes through the Tverberg lift.
			name: "exact", d: 2, f: 2,
			run: bvc.SimulateExact,
			cfg: func(n, d, f int) bvc.Config {
				return bvc.Config{N: n, F: f, D: d, Lo: []float64{0}, Hi: []float64{1}}
			},
		},
		{
			// n one above the tight bound keeps the f = 2 candidate sets
			// strictly above the Lemma-1 threshold: the lift's prefix
			// ((d+1)f+1 = 7) is shorter than the candidate size (8), so the
			// sub-family memo is exercised, and the cell avoids the known
			// fragile tight-bound regime.
			name: "restricted_sync", d: 2, f: 2, n: 10,
			run: bvc.SimulateRestrictedSync,
			cfg: func(n, d, f int) bvc.Config {
				return bvc.Config{N: n, F: f, D: d, Epsilon: 0.2, Lo: []float64{0}, Hi: []float64{1}, MaxRounds: 3}
			},
		},
		{
			// Witness-optimized: candidate sets are the witness prefixes
			// (size n−f = 5 > d+2 = 4), exercising the Radon-path prefix.
			name: "approx_async", d: 2, f: 1, n: 6,
			run: bvc.SimulateApproxAsync,
			cfg: func(n, d, f int) bvc.Config {
				return bvc.Config{N: n, F: f, D: d, Epsilon: 0.1, Lo: []float64{0}, Hi: []float64{1},
					WitnessOptimization: true, MaxRounds: 2}
			},
		},
		{
			name: "restricted_async", d: 2, f: 1,
			run: bvc.SimulateRestrictedAsync,
			cfg: func(n, d, f int) bvc.Config {
				return bvc.Config{N: n, F: f, D: d, Epsilon: 0.25, Lo: []float64{0}, Hi: []float64{1}, MaxRounds: 3}
			},
		},
	}

	delay := bvc.DelaySpec{Kind: bvc.DelayUniform, Min: time.Millisecond, Max: 7 * time.Millisecond}
	rng := rand.New(rand.NewSource(23))
	for _, vc := range variants {
		variant := map[string]bvc.Variant{
			"exact": bvc.ExactSync, "restricted_sync": bvc.RestrictedSync,
			"approx_async": bvc.ApproxAsync, "restricted_async": bvc.RestrictedAsync,
		}[vc.name]
		n := vc.n
		if n == 0 {
			n = bvc.MinProcesses(variant, vc.d, vc.f)
		}
		cfg := vc.cfg(n, vc.d, vc.f)
		for _, adv := range adversaries {
			byz := adv.mk(n, vc.d)
			inputs := make([]bvc.Vector, n)
			for i := range inputs {
				v := make(bvc.Vector, vc.d)
				for l := range v {
					v[l] = rng.Float64()
				}
				inputs[i] = v
			}
			for _, b := range byz {
				inputs[b.ID] = nil
			}
			t.Run(fmt.Sprintf("%s/%s", vc.name, adv.name), func(t *testing.T) {
				logReplayOnFailure(t, 23, 11, cfg,
					fmt.Sprintf(" delay=uniform[1ms,7ms] adversary=%s workers=%v", adv.name, workerSets))
				// From-scratch reference: cache off, serial.
				ref, err := vc.run(cfg, inputs, byz, bvc.SimOptions{
					Seed: 11, Delay: delay, Workers: 1, DisableGammaCache: true,
				})
				if err != nil {
					t.Fatalf("from-scratch reference: %v", err)
				}
				want := fingerprint(t, ref)

				reused := false
				for _, workers := range workerSets {
					before := bvc.EngineGammaCounters()
					res, err := vc.run(cfg, inputs, byz, bvc.SimOptions{
						Seed: 11, Delay: delay, Workers: workers,
					})
					if err != nil {
						t.Fatalf("incremental workers=%d: %v", workers, err)
					}
					requireSameFingerprint(t, fmt.Sprintf("incremental workers=%d", workers), want, fingerprint(t, res))
					delta := bvc.EngineGammaCounters().Sub(before)
					if delta.CacheHits+delta.PrefixHits+delta.RoundHits > 0 {
						reused = true
					}
				}
				if !reused {
					t.Fatalf("no Γ reuse observed across any cached run — the incremental path is cold")
				}
			})
		}
	}
}
