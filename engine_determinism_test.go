package bvc_test

import (
	"math/rand"
	"runtime"
	"testing"

	"repro"
)

// decisionsKey flattens a run's per-process decisions for bit-exact
// comparison.
func decisionsKey(t *testing.T, res *bvc.Result) []float64 {
	t.Helper()
	var out []float64
	for _, p := range res.Processes {
		out = append(out, p.Decision...)
	}
	return out
}

// TestSimulateDeterministicAcrossEngineOptions: end-to-end property — the
// decisions of every protocol variant are byte-identical for workers ∈
// {1, 4, GOMAXPROCS} with the Γ-point cache on or off, across random
// instances. The engine knobs in SimOptions are pure performance knobs.
func TestSimulateDeterministicAcrossEngineOptions(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	workerSets := []int{1, 4, runtime.GOMAXPROCS(0)}

	type runFn func(opts bvc.SimOptions) (*bvc.Result, error)
	mkInputs := func(n, d int) []bvc.Vector {
		out := make([]bvc.Vector, n)
		for i := range out {
			v := make(bvc.Vector, d)
			for l := range v {
				v[l] = rng.Float64()
			}
			out[i] = v
		}
		return out
	}

	cases := map[string]runFn{}
	{
		d, f := 2, 2
		n := bvc.MinProcesses(bvc.ExactSync, d, f)
		cfg := bvc.Config{N: n, F: f, D: d}
		inputs := mkInputs(n, d)
		cases["exact_d2f2"] = func(opts bvc.SimOptions) (*bvc.Result, error) {
			return bvc.SimulateExact(cfg, inputs, nil, opts)
		}
	}
	{
		d, f := 2, 1
		n := bvc.MinProcesses(bvc.RestrictedSync, d, f)
		cfg := bvc.Config{N: n, F: f, D: d, Epsilon: 0.2, Lo: []float64{0}, Hi: []float64{1}}
		inputs := mkInputs(n, d)
		cases["restricted_sync_d2f1"] = func(opts bvc.SimOptions) (*bvc.Result, error) {
			return bvc.SimulateRestrictedSync(cfg, inputs, nil, opts)
		}
	}
	{
		d, f := 1, 2
		n := bvc.MinProcesses(bvc.ApproxAsync, d, f)
		cfg := bvc.Config{N: n, F: f, D: d, Epsilon: 0.1, Lo: []float64{0}, Hi: []float64{1}, MaxRounds: 3}
		inputs := mkInputs(n, d)
		cases["approx_async_d1f2"] = func(opts bvc.SimOptions) (*bvc.Result, error) {
			return bvc.SimulateApproxAsync(cfg, inputs, nil, opts)
		}
	}

	for name, run := range cases {
		t.Run(name, func(t *testing.T) {
			var want []float64
			for _, workers := range workerSets {
				for _, noCache := range []bool{false, true} {
					res, err := run(bvc.SimOptions{Seed: 5, Workers: workers, DisableGammaCache: noCache})
					if err != nil {
						t.Fatalf("workers=%d noCache=%v: %v", workers, noCache, err)
					}
					got := decisionsKey(t, res)
					if want == nil {
						want = got
						continue
					}
					if len(got) != len(want) {
						t.Fatalf("workers=%d noCache=%v: %d decision coords, want %d", workers, noCache, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("workers=%d noCache=%v: decision coord %d = %x, want %x",
								workers, noCache, i, got[i], want[i])
						}
					}
				}
			}
		})
	}
}
