package bvc_test

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro"
)

// decisionsKey flattens a run's per-process decisions for bit-exact
// comparison.
func decisionsKey(t *testing.T, res *bvc.Result) []float64 {
	t.Helper()
	var out []float64
	for _, p := range res.Processes {
		out = append(out, p.Decision...)
	}
	return out
}

// fingerprint flattens everything observable about a run — message and
// round counts, virtual time, and every process's decision and per-round
// history — into one comparable vector. Two runs are "the same execution"
// iff their fingerprints match bit-for-bit.
func fingerprint(t *testing.T, res *bvc.Result) []float64 {
	t.Helper()
	out := []float64{float64(res.Messages), float64(res.VirtualTime)}
	for _, p := range res.Processes {
		out = append(out, float64(p.ID), float64(p.Rounds))
		out = append(out, p.Decision...)
		for _, h := range p.History {
			out = append(out, h...)
		}
	}
	return out
}

// logReplayOnFailure arranges for a failing subtest to print everything
// needed to replay it standalone: the master seed of the input stream (the
// shared rng is consumed in case-declaration order, so the seed plus the
// subtest name pin the inputs), the per-run simulation seed, and the
// config tuple. Keep the printed tuple in sync when adding cases.
func logReplayOnFailure(t *testing.T, masterSeed, simSeed int64, cfg bvc.Config, extra string) {
	t.Helper()
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		t.Logf("replay standalone: go test -run '%s' .  [master input seed %d (inputs drawn in case order), sim seed %d, config n=%d d=%d f=%d eps=%g maxRounds=%d%s]",
			t.Name(), masterSeed, simSeed, cfg.N, cfg.D, cfg.F, cfg.Epsilon, cfg.MaxRounds, extra)
	})
}

func requireSameFingerprint(t *testing.T, label string, want, got []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: fingerprint length %d, want %d", label, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: fingerprint[%d] = %x, want %x", label, i, got[i], want[i])
		}
	}
}

// TestSimulateDeterministicAcrossEngineOptions: end-to-end property — the
// decisions of every protocol variant are byte-identical for workers ∈
// {1, 4, GOMAXPROCS} with the Γ-point cache on or off, across random
// instances. The engine knobs in SimOptions are pure performance knobs.
func TestSimulateDeterministicAcrossEngineOptions(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	workerSets := []int{1, 4, runtime.GOMAXPROCS(0)}

	type runFn func(opts bvc.SimOptions) (*bvc.Result, error)
	mkInputs := func(n, d int) []bvc.Vector {
		out := make([]bvc.Vector, n)
		for i := range out {
			v := make(bvc.Vector, d)
			for l := range v {
				v[l] = rng.Float64()
			}
			out[i] = v
		}
		return out
	}

	cases := map[string]runFn{}
	caseCfgs := map[string]bvc.Config{}
	{
		d, f := 2, 2
		n := bvc.MinProcesses(bvc.ExactSync, d, f)
		cfg := bvc.Config{N: n, F: f, D: d}
		inputs := mkInputs(n, d)
		caseCfgs["exact_d2f2"] = cfg
		cases["exact_d2f2"] = func(opts bvc.SimOptions) (*bvc.Result, error) {
			return bvc.SimulateExact(cfg, inputs, nil, opts)
		}
	}
	{
		d, f := 2, 1
		n := bvc.MinProcesses(bvc.RestrictedSync, d, f)
		cfg := bvc.Config{N: n, F: f, D: d, Epsilon: 0.2, Lo: []float64{0}, Hi: []float64{1}}
		inputs := mkInputs(n, d)
		caseCfgs["restricted_sync_d2f1"] = cfg
		cases["restricted_sync_d2f1"] = func(opts bvc.SimOptions) (*bvc.Result, error) {
			return bvc.SimulateRestrictedSync(cfg, inputs, nil, opts)
		}
	}
	{
		d, f := 1, 2
		n := bvc.MinProcesses(bvc.ApproxAsync, d, f)
		cfg := bvc.Config{N: n, F: f, D: d, Epsilon: 0.1, Lo: []float64{0}, Hi: []float64{1}, MaxRounds: 3}
		inputs := mkInputs(n, d)
		caseCfgs["approx_async_d1f2"] = cfg
		cases["approx_async_d1f2"] = func(opts bvc.SimOptions) (*bvc.Result, error) {
			return bvc.SimulateApproxAsync(cfg, inputs, nil, opts)
		}
	}

	for name, run := range cases {
		t.Run(name, func(t *testing.T) {
			logReplayOnFailure(t, 99, 5, caseCfgs[name], "")
			var want []float64
			for _, workers := range workerSets {
				for _, noCache := range []bool{false, true} {
					res, err := run(bvc.SimOptions{Seed: 5, Workers: workers, DisableGammaCache: noCache})
					if err != nil {
						t.Fatalf("workers=%d noCache=%v: %v", workers, noCache, err)
					}
					got := decisionsKey(t, res)
					if want == nil {
						want = got
						continue
					}
					if len(got) != len(want) {
						t.Fatalf("workers=%d noCache=%v: %d decision coords, want %d", workers, noCache, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("workers=%d noCache=%v: decision coord %d = %x, want %x",
								workers, noCache, i, got[i], want[i])
						}
					}
				}
			}
		})
	}
}

// TestSimulateDeterministicAcrossNodeWorkers: the tentpole property of the
// sharded simulator — every protocol variant, under every delay kind and
// adversary strategy, produces a bit-identical execution (decisions,
// per-round histories, round counts, message counts, virtual time) for
// NodeWorkers ∈ {1, 4, GOMAXPROCS}. Cross-node parallelism is purely a
// wall-clock knob.
func TestSimulateDeterministicAcrossNodeWorkers(t *testing.T) {
	nodeWorkerSets := []int{1, 4, runtime.GOMAXPROCS(0)}
	delayKinds := []struct {
		name string
		spec bvc.DelaySpec
	}{
		{"constant", bvc.DelaySpec{Kind: bvc.DelayConstant, Mean: time.Millisecond}},
		{"uniform", bvc.DelaySpec{Kind: bvc.DelayUniform, Min: time.Millisecond, Max: 9 * time.Millisecond}},
		{"exponential", bvc.DelaySpec{Kind: bvc.DelayExponential, Mean: 4 * time.Millisecond}},
	}
	adversaries := []struct {
		name string
		mk   func(n, d int) []bvc.Byzantine
	}{
		{"none", func(int, int) []bvc.Byzantine { return nil }},
		{"silent", func(n, d int) []bvc.Byzantine {
			return []bvc.Byzantine{{ID: n - 1, Strategy: bvc.StrategySilent}}
		}},
		{"crash", func(n, d int) []bvc.Byzantine {
			return []bvc.Byzantine{{ID: n - 1, Strategy: bvc.StrategyCrash, CrashAfter: 1}}
		}},
		{"equivocate", func(n, d int) []bvc.Byzantine {
			lo := make(bvc.Vector, d)
			hi := make(bvc.Vector, d)
			for i := range hi {
				hi[i] = 1
			}
			return []bvc.Byzantine{{ID: n - 1, Strategy: bvc.StrategyEquivocate, Target: lo, Target2: hi}}
		}},
		{"random", func(n, d int) []bvc.Byzantine {
			return []bvc.Byzantine{{ID: n - 1, Strategy: bvc.StrategyRandom}}
		}},
		{"lure", func(n, d int) []bvc.Byzantine {
			hi := make(bvc.Vector, d)
			for i := range hi {
				hi[i] = 1
			}
			return []bvc.Byzantine{{ID: n - 1, Strategy: bvc.StrategyLure, Target: hi}}
		}},
	}

	rng := rand.New(rand.NewSource(41))
	mkInputs := func(n, d int, byz []bvc.Byzantine) []bvc.Vector {
		out := make([]bvc.Vector, n)
		for i := range out {
			v := make(bvc.Vector, d)
			for l := range v {
				v[l] = rng.Float64()
			}
			out[i] = v
		}
		for _, b := range byz {
			out[b.ID] = nil
		}
		return out
	}

	type variantCase struct {
		name      string
		d, f      int
		usesDelay bool
		run       func(cfg bvc.Config, inputs []bvc.Vector, byz []bvc.Byzantine, opts bvc.SimOptions) (*bvc.Result, error)
		cfg       func(n, d, f int) bvc.Config
	}
	variants := []variantCase{
		{
			name: "exact", d: 2, f: 2, usesDelay: false,
			run: bvc.SimulateExact,
			cfg: func(n, d, f int) bvc.Config {
				return bvc.Config{N: n, F: f, D: d, Lo: []float64{0}, Hi: []float64{1}}
			},
		},
		{
			name: "restricted_sync", d: 2, f: 1, usesDelay: false,
			run: bvc.SimulateRestrictedSync,
			cfg: func(n, d, f int) bvc.Config {
				return bvc.Config{N: n, F: f, D: d, Epsilon: 0.2, Lo: []float64{0}, Hi: []float64{1}}
			},
		},
		{
			name: "approx_async", d: 1, f: 1, usesDelay: true,
			run: bvc.SimulateApproxAsync,
			cfg: func(n, d, f int) bvc.Config {
				return bvc.Config{N: n, F: f, D: d, Epsilon: 0.1, Lo: []float64{0}, Hi: []float64{1}, MaxRounds: 3}
			},
		},
		{
			name: "restricted_async", d: 1, f: 1, usesDelay: true,
			run: bvc.SimulateRestrictedAsync,
			cfg: func(n, d, f int) bvc.Config {
				return bvc.Config{N: n, F: f, D: d, Epsilon: 0.25, Lo: []float64{0}, Hi: []float64{1}}
			},
		},
	}

	for _, vc := range variants {
		variant := map[string]bvc.Variant{
			"exact": bvc.ExactSync, "restricted_sync": bvc.RestrictedSync,
			"approx_async": bvc.ApproxAsync, "restricted_async": bvc.RestrictedAsync,
		}[vc.name]
		n := bvc.MinProcesses(variant, vc.d, vc.f)
		cfg := vc.cfg(n, vc.d, vc.f)
		delays := delayKinds
		if !vc.usesDelay {
			// The lock-step engines ignore the delay model; one delay row
			// suffices and the grid stays affordable.
			delays = delayKinds[:1]
		}
		for _, dk := range delays {
			for _, adv := range adversaries {
				byz := adv.mk(n, vc.d)
				inputs := mkInputs(n, vc.d, byz)
				t.Run(fmt.Sprintf("%s/%s/%s", vc.name, dk.name, adv.name), func(t *testing.T) {
					logReplayOnFailure(t, 41, 7, cfg,
						fmt.Sprintf(" delay=%s adversary=%s workers=%v", dk.name, adv.name, nodeWorkerSets))
					var want []float64
					for _, nw := range nodeWorkerSets {
						res, err := vc.run(cfg, inputs, byz, bvc.SimOptions{
							Seed: 7, Delay: dk.spec, NodeWorkers: nw,
						})
						if err != nil {
							t.Fatalf("nodeworkers=%d: %v", nw, err)
						}
						got := fingerprint(t, res)
						if want == nil {
							want = got
							continue
						}
						requireSameFingerprint(t, fmt.Sprintf("nodeworkers=%d", nw), want, got)
					}
				})
			}
		}
	}
}
