package bvc_test

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro"
)

func randInputs(rng *rand.Rand, n, d int, lo, hi float64) []bvc.Vector {
	out := make([]bvc.Vector, n)
	for i := range out {
		v := make(bvc.Vector, d)
		for j := range v {
			v[j] = lo + rng.Float64()*(hi-lo)
		}
		out[i] = v
	}
	return out
}

func TestSimulateExactHonest(t *testing.T) {
	cfg := bvc.Config{N: 5, F: 1, D: 2}
	rng := rand.New(rand.NewSource(1))
	inputs := randInputs(rng, cfg.N, cfg.D, 0, 1)
	res, err := bvc.SimulateExact(cfg, inputs, nil, bvc.SimOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.VerifyExact(); err != nil {
		t.Fatalf("verification: %v", err)
	}
	if len(res.Decisions()) != cfg.N {
		t.Errorf("decisions = %d, want %d", len(res.Decisions()), cfg.N)
	}
	if res.Messages == 0 {
		t.Error("no messages recorded")
	}
}

func TestSimulateExactAllStrategies(t *testing.T) {
	cfg := bvc.Config{N: 5, F: 1, D: 2, Lo: []float64{0}, Hi: []float64{1}}
	rng := rand.New(rand.NewSource(2))
	strategies := []bvc.Byzantine{
		{ID: 4, Strategy: bvc.StrategySilent},
		{ID: 4, Strategy: bvc.StrategyCrash, CrashAfter: 1},
		{ID: 4, Strategy: bvc.StrategyEquivocate, Target: bvc.Vector{0, 0}, Target2: bvc.Vector{9, 9}},
		{ID: 4, Strategy: bvc.StrategyRandom},
		{ID: 4, Strategy: bvc.StrategyLure, Target: bvc.Vector{50, 50}},
	}
	for _, b := range strategies {
		inputs := randInputs(rng, cfg.N, cfg.D, 0, 1)
		inputs[4] = nil
		res, err := bvc.SimulateExact(cfg, inputs, []bvc.Byzantine{b}, bvc.SimOptions{Seed: 3})
		if err != nil {
			t.Fatalf("strategy %d: %v", b.Strategy, err)
		}
		if err := res.VerifyExact(); err != nil {
			t.Errorf("strategy %d: verification: %v", b.Strategy, err)
		}
	}
}

func TestSimulateCoordinateWisePaperExample(t *testing.T) {
	cfg := bvc.Config{N: 4, F: 1, D: 3}
	inputs := []bvc.Vector{
		{2.0 / 3, 1.0 / 6, 1.0 / 6},
		{1.0 / 6, 2.0 / 3, 1.0 / 6},
		{1.0 / 6, 1.0 / 6, 2.0 / 3},
		nil,
	}
	byz := []bvc.Byzantine{{ID: 3, Strategy: bvc.StrategyLure, Target: bvc.Vector{0, 0, 0}}}
	res, err := bvc.SimulateCoordinateWise(cfg, inputs, byz, bvc.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.VerifyValidity(); err == nil {
		t.Fatal("coordinate-wise consensus should violate validity on the paper's example")
	}
}

func TestSimulateApproxAsync(t *testing.T) {
	cfg := bvc.Config{N: 5, F: 1, D: 2, Epsilon: 0.2, Lo: []float64{0}, Hi: []float64{1}}
	rng := rand.New(rand.NewSource(4))
	inputs := randInputs(rng, cfg.N, cfg.D, 0, 1)
	res, err := bvc.SimulateApproxAsync(cfg, inputs, nil, bvc.SimOptions{
		Seed:  5,
		Delay: bvc.DelaySpec{Kind: bvc.DelayUniform, Min: time.Millisecond, Max: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.VerifyApprox(); err != nil {
		t.Fatalf("verification: %v", err)
	}
	for _, p := range res.Processes {
		if p.Byzantine {
			continue
		}
		if len(p.History) != p.Rounds+1 {
			t.Errorf("process %d: history %d entries, rounds %d", p.ID, len(p.History), p.Rounds)
		}
	}
}

func TestSimulateApproxAsyncWithByzantineAndStarving(t *testing.T) {
	cfg := bvc.Config{
		N: 5, F: 1, D: 2, Epsilon: 0.25,
		Lo: []float64{0}, Hi: []float64{1},
		WitnessOptimization: true,
	}
	rng := rand.New(rand.NewSource(6))
	inputs := randInputs(rng, cfg.N, cfg.D, 0, 1)
	inputs[2] = nil
	byz := []bvc.Byzantine{{ID: 2, Strategy: bvc.StrategyEquivocate, Target: bvc.Vector{0, 0}, Target2: bvc.Vector{1, 1}}}
	res, err := bvc.SimulateApproxAsync(cfg, inputs, byz, bvc.SimOptions{
		Seed: 7,
		Delay: bvc.DelaySpec{
			Kind: bvc.DelayConstant, Mean: time.Millisecond,
			StarveSet: []int{0}, StarveExtra: 200 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.VerifyApprox(); err != nil {
		t.Fatalf("verification: %v", err)
	}
}

func TestSimulateRestrictedSync(t *testing.T) {
	cfg := bvc.Config{N: 5, F: 1, D: 2, Epsilon: 0.2, Lo: []float64{0}, Hi: []float64{1}}
	rng := rand.New(rand.NewSource(8))
	inputs := randInputs(rng, cfg.N, cfg.D, 0, 1)
	inputs[1] = nil
	byz := []bvc.Byzantine{{ID: 1, Strategy: bvc.StrategyLure, Target: bvc.Vector{1, 1}}}
	res, err := bvc.SimulateRestrictedSync(cfg, inputs, byz, bvc.SimOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.VerifyApprox(); err != nil {
		t.Fatalf("verification: %v", err)
	}
}

func TestSimulateRestrictedAsync(t *testing.T) {
	cfg := bvc.Config{N: 7, F: 1, D: 2, Epsilon: 0.25, Lo: []float64{0}, Hi: []float64{1}}
	rng := rand.New(rand.NewSource(10))
	inputs := randInputs(rng, cfg.N, cfg.D, 0, 1)
	inputs[6] = nil
	byz := []bvc.Byzantine{{ID: 6, Strategy: bvc.StrategyEquivocate, Target: bvc.Vector{0, 0}, Target2: bvc.Vector{1, 1}}}
	res, err := bvc.SimulateRestrictedAsync(cfg, inputs, byz, bvc.SimOptions{
		Seed:  11,
		Delay: bvc.DelaySpec{Kind: bvc.DelayExponential, Mean: 3 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.VerifyApprox(); err != nil {
		t.Fatalf("verification: %v", err)
	}
}

func TestSimulateValidationErrors(t *testing.T) {
	good := bvc.Config{N: 5, F: 1, D: 2}
	inputs := randInputs(rand.New(rand.NewSource(1)), 5, 2, 0, 1)
	if _, err := bvc.SimulateExact(good, inputs[:3], nil, bvc.SimOptions{}); err == nil {
		t.Error("wrong input count accepted")
	}
	if _, err := bvc.SimulateExact(good, inputs, []bvc.Byzantine{{ID: 9}}, bvc.SimOptions{}); err == nil {
		t.Error("out-of-range byzantine id accepted")
	}
	if _, err := bvc.SimulateExact(good, inputs, []bvc.Byzantine{
		{ID: 0, Strategy: bvc.StrategySilent}, {ID: 1, Strategy: bvc.StrategySilent},
	}, bvc.SimOptions{}); err == nil {
		t.Error("more byzantine processes than f accepted")
	}
	bad := bvc.Config{N: 3, F: 1, D: 2}
	if _, err := bvc.SimulateExact(bad, inputs[:3], nil, bvc.SimOptions{}); err == nil {
		t.Error("n below bound accepted")
	}
}

func TestSimulateDeterminism(t *testing.T) {
	cfg := bvc.Config{N: 4, F: 1, D: 1, Epsilon: 0.2, Lo: []float64{0}, Hi: []float64{1}}
	inputs := []bvc.Vector{{0}, {0.5}, {1}, {0.25}}
	run := func() []bvc.Vector {
		res, err := bvc.SimulateApproxAsync(cfg, inputs, nil, bvc.SimOptions{
			Seed:  42,
			Delay: bvc.DelaySpec{Kind: bvc.DelayUniform, Min: 0, Max: 20 * time.Millisecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Decisions()
	}
	a, b := run(), run()
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("non-deterministic simulation: %v vs %v", a, b)
			}
		}
	}
}

func TestMinProcessesAndGamma(t *testing.T) {
	if bvc.MinProcesses(bvc.ExactSync, 3, 1) != 5 {
		t.Error("MinProcesses exact d=3 f=1 should be 5")
	}
	if bvc.MinProcesses(bvc.ApproxAsync, 2, 1) != 5 {
		t.Error("MinProcesses async d=2 f=1 should be 5")
	}
	g := bvc.Gamma(bvc.ApproxAsync, 5, 1, false)
	if math.Abs(g-1.0/25) > 1e-12 {
		t.Errorf("gamma = %g, want 1/25", g)
	}
	if bvc.RoundBound(0.5, 8, 1) != 4 {
		t.Error("RoundBound(0.5, 8, 1) should be 4")
	}
}

func TestSafePointAPI(t *testing.T) {
	points := []bvc.Vector{{0, 0}, {4, 0}, {0, 4}, {4, 4}, {2, 2}}
	pt, err := bvc.SafePoint(points, 1)
	if err != nil {
		t.Fatal(err)
	}
	in, err := bvc.SafeAreaContains(points, 1, pt)
	if err != nil {
		t.Fatal(err)
	}
	if !in {
		t.Errorf("safe point %v not in Γ", pt)
	}
	empty, err := bvc.SafeAreaEmpty(points, 1)
	if err != nil || empty {
		t.Errorf("Γ should be non-empty: empty=%v err=%v", empty, err)
	}
	// Theorem 1 counterexample: basis + origin with f = 1 is empty.
	basis := []bvc.Vector{{1, 0}, {0, 1}, {0, 0}}
	empty, err = bvc.SafeAreaEmpty(basis, 1)
	if err != nil || !empty {
		t.Errorf("basis Γ should be empty: empty=%v err=%v", empty, err)
	}
	if _, err := bvc.SafePoint(basis, 1); err == nil {
		t.Error("SafePoint on empty Γ should error")
	}
}

func TestSafePointMethodsAgree(t *testing.T) {
	points := []bvc.Vector{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {0.5, 0.5}}
	for _, m := range []bvc.PointMethod{bvc.MethodAuto, bvc.MethodLexMinLP, bvc.MethodTverbergSearch} {
		pt, err := bvc.SafePointWith(points, 1, m)
		if err != nil {
			t.Fatalf("method %d: %v", m, err)
		}
		in, err := bvc.SafeAreaContains(points, 1, pt)
		if err != nil || !in {
			t.Errorf("method %d: point %v not in Γ (err=%v)", m, pt, err)
		}
	}
}

func TestInConvexHullAPI(t *testing.T) {
	tri := []bvc.Vector{{0, 0}, {1, 0}, {0, 1}}
	in, err := bvc.InConvexHull(tri, bvc.Vector{0.2, 0.2})
	if err != nil || !in {
		t.Errorf("inside point: in=%v err=%v", in, err)
	}
	in, err = bvc.InConvexHull(tri, bvc.Vector{1, 1})
	if err != nil || in {
		t.Errorf("outside point: in=%v err=%v", in, err)
	}
	if _, err := bvc.InConvexHull(tri, bvc.Vector{1}); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := bvc.InConvexHull(nil, bvc.Vector{1}); err == nil {
		t.Error("empty hull accepted")
	}
}

func TestTverbergPartitionAPI(t *testing.T) {
	// Heptagon: Figure 1.
	points := make([]bvc.Vector, 7)
	for k := range points {
		a := 2 * math.Pi * float64(k) / 7
		points[k] = bvc.Vector{math.Cos(a), math.Sin(a)}
	}
	blocks, pt, found, err := bvc.TverbergPartition(points, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("heptagon must admit a 3-partition")
	}
	if len(blocks) != 3 {
		t.Errorf("blocks = %d", len(blocks))
	}
	for _, blk := range blocks {
		var hullPts []bvc.Vector
		for _, idx := range blk {
			hullPts = append(hullPts, points[idx])
		}
		in, err := bvc.InConvexHull(hullPts, pt)
		if err != nil || !in {
			t.Errorf("tverberg point not in block %v (err=%v)", blk, err)
		}
	}
}

func TestRadonPartitionAPI(t *testing.T) {
	blocks, pt, err := bvc.RadonPartition([]bvc.Vector{{0, 0}, {1, 1}, {1, 0}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 2 {
		t.Errorf("blocks = %d", len(blocks))
	}
	if math.Abs(pt[0]-0.5) > 1e-9 || math.Abs(pt[1]-0.5) > 1e-9 {
		t.Errorf("radon point = %v", pt)
	}
	if _, _, err := bvc.RadonPartition([]bvc.Vector{{0, 0}}); err == nil {
		t.Error("wrong point count accepted")
	}
}

func TestRunAsyncCluster(t *testing.T) {
	cfg := bvc.Config{N: 4, F: 1, D: 1, Epsilon: 0.2, Lo: []float64{0}, Hi: []float64{1}}
	inputs := []bvc.Vector{{0}, {1}, {0.5}, {0.25}}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	decisions, err := bvc.RunAsyncCluster(ctx, cfg, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(decisions) != cfg.N {
		t.Fatalf("decisions = %d", len(decisions))
	}
	for i := 1; i < len(decisions); i++ {
		if math.Abs(decisions[i][0]-decisions[0][0]) > cfg.Epsilon {
			t.Errorf("ε-agreement violated on live cluster: %v", decisions)
		}
	}
	for _, d := range decisions {
		if d[0] < 0 || d[0] > 1 {
			t.Errorf("decision %v outside input hull", d)
		}
	}
}

func TestRunTCPCluster(t *testing.T) {
	cfg := bvc.Config{N: 4, F: 1, D: 1, Epsilon: 0.25, Lo: []float64{0}, Hi: []float64{1}}
	inputs := []bvc.Vector{{0}, {1}, {0.5}, {0.75}}
	tmpl := []string{"127.0.0.1:0", "127.0.0.1:0", "127.0.0.1:0", "127.0.0.1:0"}
	procs := make([]*bvc.TCPProcess, cfg.N)
	addrs := make([]string, cfg.N)
	for i := 0; i < cfg.N; i++ {
		p, err := bvc.NewTCPProcess(cfg, i, tmpl, inputs[i])
		if err != nil {
			t.Fatal(err)
		}
		procs[i] = p
		addrs[i] = p.Addr()
	}
	defer func() {
		for _, p := range procs {
			_ = p.Close()
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	type outcome struct {
		id  int
		dec bvc.Vector
		err error
	}
	ch := make(chan outcome, cfg.N)
	for i, p := range procs {
		i, p := i, p
		go func() {
			dec, err := p.Run(ctx, addrs)
			ch <- outcome{id: i, dec: dec, err: err}
		}()
	}
	decisions := make([]bvc.Vector, cfg.N)
	for k := 0; k < cfg.N; k++ {
		o := <-ch
		if o.err != nil {
			t.Fatalf("process %d: %v", o.id, o.err)
		}
		decisions[o.id] = o.dec
	}
	for i := 1; i < cfg.N; i++ {
		if math.Abs(decisions[i][0]-decisions[0][0]) > cfg.Epsilon {
			t.Errorf("ε-agreement violated over TCP: %v", decisions)
		}
	}
}

func TestResultVerifyErrorsAreTyped(t *testing.T) {
	cfg := bvc.Config{N: 4, F: 1, D: 3}
	inputs := []bvc.Vector{
		{2.0 / 3, 1.0 / 6, 1.0 / 6},
		{1.0 / 6, 2.0 / 3, 1.0 / 6},
		{1.0 / 6, 1.0 / 6, 2.0 / 3},
		nil,
	}
	byz := []bvc.Byzantine{{ID: 3, Strategy: bvc.StrategyLure, Target: bvc.Vector{0, 0, 0}}}
	res, err := bvc.SimulateCoordinateWise(cfg, inputs, byz, bvc.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	verr := res.VerifyValidity()
	if verr == nil {
		t.Fatal("expected validity violation")
	}
	var generic error = verr
	if !errors.Is(generic, verr) {
		t.Error("error identity lost")
	}
}
