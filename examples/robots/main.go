// Robots: mobile-robot rendezvous in 3-D — the paper's own motivating
// workload for a-priori input bounds ("if the input vectors represent
// locations in 3-dimensional space occupied by mobile robots, then U and ν
// are determined by the boundary of the region in which the robots are
// allowed to operate").
//
// Six robots run the asynchronous approximate BVC algorithm live — one
// goroutine per robot over in-process reliable FIFO channels, real OS
// scheduling supplying the asynchrony — and converge on a rendezvous point
// inside the convex hull of their positions, within ε per axis.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro"
)

func main() {
	const (
		robots = 6   // (d+2)f+1 = 6 with d = 3, f = 1... with one spare
		arena  = 100 // arena is [0, 100]³ meters
		eps    = 0.5 // rendezvous tolerance per axis, meters
	)
	cfg := bvc.Config{
		N: robots, F: 1, D: 3,
		Epsilon: eps,
		Lo:      []float64{0},
		Hi:      []float64{arena},
	}

	rng := rand.New(rand.NewSource(7))
	positions := make([]bvc.Vector, robots)
	for i := range positions {
		positions[i] = bvc.Vector{
			rng.Float64() * arena,
			rng.Float64() * arena,
			rng.Float64() * arena,
		}
	}

	fmt.Println("robot rendezvous: asynchronous approximate BVC, live goroutine cluster")
	for i, p := range positions {
		fmt.Printf("  robot %d at (%.1f, %.1f, %.1f)\n", i+1, p[0], p[1], p[2])
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	start := time.Now()
	decisions, err := bvc.RunAsyncCluster(ctx, cfg, positions)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged in %v (%d rounds analytically)\n",
		time.Since(start).Round(time.Millisecond),
		bvc.RoundBound(bvc.Gamma(bvc.ApproxAsync, robots, 1, false), arena, eps))

	for i, dec := range decisions {
		fmt.Printf("  robot %d heads to (%.3f, %.3f, %.3f)\n", i+1, dec[0], dec[1], dec[2])
	}

	// All rendezvous points agree within ε per axis and stay inside the
	// hull of the starting positions (no robot is sent outside the swarm).
	for i := 1; i < robots; i++ {
		for axis := 0; axis < 3; axis++ {
			if diff := decisions[i][axis] - decisions[0][axis]; diff > eps || diff < -eps {
				log.Fatalf("robots %d and 1 disagree by %.3f on axis %d", i+1, diff, axis)
			}
		}
	}
	in, err := bvc.InConvexHull(positions, decisions[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rendezvous inside the swarm's hull: %v\n", in)
}
