// Mlagg: Byzantine-robust gradient aggregation. Distributed SGD workers
// propose gradient vectors; up to f of them are Byzantine and propose
// poison. Aggregating with the safe area Γ(Y) guarantees the applied update
// lies in the convex hull of the honest gradients no matter what the
// attackers send — the multidimensional agreement primitive that
// coordinate-wise robust aggregators (e.g. per-coordinate trimmed means)
// cannot provide, as the paper's validity discussion explains.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro"
)

func main() {
	const (
		workers = 7 // ≥ (d+1)f+1 = 7 with d = 2, f = 2
		faults  = 2
		dim     = 2
		steps   = 30
		lr      = 0.35
	)

	// Minimize the quadratic loss ½‖w − target‖²: the honest gradient at w
	// is (w − target) plus worker-local noise.
	target := bvc.Vector{3, -2}
	weights := bvc.Vector{-4, 4}
	rng := rand.New(rand.NewSource(9))

	fmt.Printf("robust SGD: %d workers, %d Byzantine, safe-area aggregation\n", workers, faults)
	fmt.Printf("start %v, optimum %v\n", weights, target)

	for step := 1; step <= steps; step++ {
		grads := make([]bvc.Vector, 0, workers)
		// Honest workers: true gradient + noise.
		for w := 0; w < workers-faults; w++ {
			g := make(bvc.Vector, dim)
			for j := 0; j < dim; j++ {
				g[j] = (weights[j] - target[j]) + rng.NormFloat64()*0.05
			}
			grads = append(grads, g)
		}
		// Byzantine workers: gradient ascent toward a poison point, scaled
		// up ×10 to dominate any averaging scheme.
		for w := 0; w < faults; w++ {
			g := make(bvc.Vector, dim)
			for j := 0; j < dim; j++ {
				g[j] = -10 * (weights[j] - 50)
			}
			grads = append(grads, g)
		}

		// Γ(Y) with f = 2: guaranteed inside the hull of honest gradients.
		agg, err := bvc.SafePoint(grads, faults)
		if err != nil {
			log.Fatalf("step %d: %v", step, err)
		}
		honest := grads[:workers-faults]
		in, err := bvc.InConvexHull(honest, agg)
		if err != nil {
			log.Fatal(err)
		}
		if !in {
			log.Fatalf("step %d: aggregate escaped the honest hull", step)
		}
		for j := 0; j < dim; j++ {
			weights[j] -= lr * agg[j]
		}
		if step%5 == 0 || step == 1 {
			fmt.Printf("  step %2d: weights (%.3f, %.3f), dist to optimum %.4f\n",
				step, weights[0], weights[1], dist(weights, target))
		}
	}
	if d := dist(weights, target); d > 0.2 {
		log.Fatalf("did not converge: distance %.4f", d)
	}
	fmt.Println("converged despite 2/7 poisoned workers: every update stayed in the honest hull")
}

func dist(a, b bvc.Vector) float64 {
	var s float64
	for i := range a {
		s += (a[i] - b[i]) * (a[i] - b[i])
	}
	return math.Sqrt(s)
}
