// Quickstart: five processes, one of them Byzantine and equivocating, agree
// exactly on a 2-D vector that provably lies inside the convex hull of the
// four correct inputs (Exact BVC, paper §2.2).
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	cfg := bvc.Config{N: 5, F: 1, D: 2}

	// Four correct inputs; process 5 is Byzantine (input slot nil).
	inputs := []bvc.Vector{
		{0.1, 0.2},
		{0.9, 0.1},
		{0.5, 0.8},
		{0.4, 0.4},
		nil,
	}
	byz := []bvc.Byzantine{{
		ID:       4,
		Strategy: bvc.StrategyEquivocate,
		Target:   bvc.Vector{-5, -5}, // told to half the processes
		Target2:  bvc.Vector{9, 9},   // told to the other half
	}}

	res, err := bvc.SimulateExact(cfg, inputs, byz, bvc.SimOptions{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Exact Byzantine vector consensus, n=5, f=1, d=2")
	fmt.Println("process 5 equivocates (-5,-5) vs (9,9); the others hold:")
	for _, p := range res.Processes {
		if p.Byzantine {
			fmt.Printf("  p%d: BYZANTINE\n", p.ID+1)
			continue
		}
		fmt.Printf("  p%d: input %v → decision %v\n", p.ID+1, p.Input, p.Decision)
	}
	if err := res.VerifyExact(); err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	fmt.Println("verified: identical decisions, inside the hull of correct inputs")
}
