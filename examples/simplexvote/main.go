// Simplexvote: the paper's §1 counterexample, live. Three correct processes
// hold probability vectors (e.g. mixture weights that must stay a valid
// distribution). Running scalar Byzantine consensus per dimension satisfies
// each coordinate's scalar validity yet decides a vector whose coordinates
// sum to 1/2 — not a distribution at all. Exact BVC on the same workload
// provably stays on the simplex.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// The paper's exact inputs.
	p1 := bvc.Vector{2.0 / 3, 1.0 / 6, 1.0 / 6}
	p2 := bvc.Vector{1.0 / 6, 2.0 / 3, 1.0 / 6}
	p3 := bvc.Vector{1.0 / 6, 1.0 / 6, 2.0 / 3}

	fmt.Println("inputs (probability vectors):")
	for i, p := range []bvc.Vector{p1, p2, p3} {
		fmt.Printf("  p%d: %.4f (sum = 1)\n", i+1, p)
	}
	byzantine := []bvc.Byzantine{{ID: 3, Strategy: bvc.StrategyLure, Target: bvc.Vector{0, 0, 0}}}
	fmt.Println("  p4: BYZANTINE, announces (0, 0, 0)")

	// Coordinate-wise scalar consensus (n = 3f+1 = 4 suffices — for the
	// wrong guarantee).
	cw, err := bvc.SimulateCoordinateWise(
		bvc.Config{N: 4, F: 1, D: 3},
		[]bvc.Vector{p1, p2, p3, nil}, byzantine, bvc.SimOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	cwDec := cw.Decisions()[0]
	fmt.Printf("\ncoordinate-wise consensus decides %.4f (sum = %.3f)\n", cwDec, sum(cwDec))
	if err := cw.VerifyValidity(); err != nil {
		fmt.Printf("  → vector validity VIOLATED, exactly as §1 predicts:\n    %v\n", err)
	} else {
		log.Fatal("expected a validity violation")
	}

	// Exact BVC needs n ≥ (d+1)f+1 = 5 for d = 3: one more correct voter.
	p4 := bvc.Vector{1.0 / 3, 1.0 / 3, 1.0 / 3}
	byz5 := []bvc.Byzantine{{ID: 4, Strategy: bvc.StrategyLure, Target: bvc.Vector{0, 0, 0}}}
	ex, err := bvc.SimulateExact(
		bvc.Config{N: 5, F: 1, D: 3},
		[]bvc.Vector{p1, p2, p3, p4, nil}, byz5, bvc.SimOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	exDec := ex.Decisions()[0]
	fmt.Printf("\nExact BVC (n = 5) decides %.4f (sum = %.3f)\n", exDec, sum(exDec))
	if err := ex.VerifyExact(); err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	fmt.Println("  → decision is still a probability vector: validity holds")
}

func sum(v bvc.Vector) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}
