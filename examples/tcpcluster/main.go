// Tcpcluster: asynchronous approximate BVC over a real TCP full mesh. Four
// processes listen on loopback ports, establish pairwise connections, and
// run the §3.2 algorithm end to end — the same state machines the simulator
// drives, now fed by genuine network I/O.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"repro"
)

func main() {
	cfg := bvc.Config{
		N: 4, F: 1, D: 2,
		Epsilon: 0.05,
		Lo:      []float64{0},
		Hi:      []float64{1},
	}
	// d = 1 would give the scalar AAD bound 3f+1 = 4; for d = 2 we need
	// (d+2)f+1 = 5 — so run with d = 2 and n = 5.
	cfg.N = 5
	inputs := []bvc.Vector{
		{0.10, 0.90},
		{0.80, 0.20},
		{0.50, 0.50},
		{0.30, 0.60},
		{0.70, 0.40},
	}

	// Every process listens on an ephemeral loopback port.
	tmpl := make([]string, cfg.N)
	for i := range tmpl {
		tmpl[i] = "127.0.0.1:0"
	}
	procs := make([]*bvc.TCPProcess, cfg.N)
	addrs := make([]string, cfg.N)
	for i := 0; i < cfg.N; i++ {
		p, err := bvc.NewTCPProcess(cfg, i, tmpl, inputs[i])
		if err != nil {
			log.Fatal(err)
		}
		procs[i] = p
		addrs[i] = p.Addr()
	}
	defer func() {
		for _, p := range procs {
			_ = p.Close()
		}
	}()
	fmt.Println("TCP mesh endpoints:")
	for i, a := range addrs {
		fmt.Printf("  p%d %s (input %v)\n", i+1, a, inputs[i])
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	decisions := make([]bvc.Vector, cfg.N)
	errs := make([]error, cfg.N)
	var wg sync.WaitGroup
	start := time.Now()
	for i, p := range procs {
		i, p := i, p
		wg.Add(1)
		go func() {
			defer wg.Done()
			decisions[i], errs[i] = p.Run(ctx, addrs)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			log.Fatalf("process %d: %v", i+1, err)
		}
	}
	fmt.Printf("all processes decided in %v:\n", time.Since(start).Round(time.Millisecond))
	for i, d := range decisions {
		fmt.Printf("  p%d → (%.4f, %.4f)\n", i+1, d[0], d[1])
	}
	for i := 1; i < cfg.N; i++ {
		for j := 0; j < cfg.D; j++ {
			if diff := decisions[i][j] - decisions[0][j]; diff > cfg.Epsilon || diff < -cfg.Epsilon {
				log.Fatalf("ε-agreement violated between p1 and p%d", i+1)
			}
		}
	}
	in, err := bvc.InConvexHull(inputs, decisions[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ε-agreement ok; decision inside input hull: %v\n", in)
}
