// Tcpcluster: the multi-tenant live consensus service over a real TCP
// full mesh. Five processes each run a bvc.Service — one pooled set of
// persistent connections per process — and three consensus instances run
// through the shared mesh concurrently, each proposing different inputs
// and deciding independently (§3.2 asynchronous approximate BVC).
//
// By default all five processes live in this one OS process, talking over
// loopback TCP. With -id and -addrs each process runs in its own OS
// process instead — see the README for a copy-paste five-terminal
// session. docs/SERVICE.md documents the service itself.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"strings"
	"sync"
	"time"

	"repro"
)

const instances = 3

func config(n int) bvc.Config {
	// n = 5 = (d+2)f+1 is the §3.2 lower bound for d = 2, f = 1.
	return bvc.Config{
		N: n, F: 1, D: 2,
		Epsilon: 0.05,
		Lo:      []float64{0},
		Hi:      []float64{1},
	}
}

// inputFor derives process id's input for one instance; every process can
// compute its own deterministically, so the multi-process mode needs no
// input exchange.
func inputFor(id int, instance uint64) bvc.Vector {
	rng := rand.New(rand.NewSource(int64(instance)<<8 | int64(id)))
	return bvc.Vector{rng.Float64(), rng.Float64()}
}

func main() {
	id := flag.Int("id", -1, "process id; -1 runs the whole mesh in this process")
	addrs := flag.String("addrs", "", "comma-separated listen addresses, one per process (with -id)")
	flag.Parse()
	if *id >= 0 {
		if err := runOne(*id, strings.Split(*addrs, ",")); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := runMesh(); err != nil {
		log.Fatal(err)
	}
}

// runOne is the multi-process mode: one service, peers elsewhere.
func runOne(id int, addrs []string) error {
	if len(addrs) < 2 {
		return fmt.Errorf("-addrs must list every process's address")
	}
	svc, err := bvc.NewService(bvc.ServiceConfig{
		Config: config(len(addrs)),
		ID:     id,
		Addrs:  addrs,
		Seed:   int64(id + 1),
	})
	if err != nil {
		return err
	}
	defer svc.Close()
	fmt.Printf("p%d listening on %s, establishing mesh...\n", id, svc.Addr())
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := svc.Establish(ctx, nil); err != nil {
		return err
	}
	chans := make([]<-chan bvc.ServiceResult, instances)
	for i := range chans {
		inst := uint64(i + 1)
		ch, err := svc.Propose(inst, inputFor(id, inst))
		if err != nil {
			return err
		}
		chans[i] = ch
	}
	for _, ch := range chans {
		r := <-ch
		if r.Err != nil {
			return fmt.Errorf("instance %d: %w", r.Instance, r.Err)
		}
		fmt.Printf("p%d instance %d → (%.4f, %.4f) in %d rounds, %v\n",
			id, r.Instance, r.Decision[0], r.Decision[1], r.Rounds, r.Elapsed.Round(time.Millisecond))
	}
	return svc.Drain(ctx)
}

// runMesh is the default demo: the whole mesh in one OS process.
func runMesh() error {
	cfg := config(5)
	tmpl := make([]string, cfg.N)
	for i := range tmpl {
		tmpl[i] = "127.0.0.1:0"
	}
	svcs := make([]*bvc.Service, cfg.N)
	addrs := make([]string, cfg.N)
	defer func() {
		for _, s := range svcs {
			if s != nil {
				_ = s.Close()
			}
		}
	}()
	for i := range svcs {
		s, err := bvc.NewService(bvc.ServiceConfig{
			Config: cfg, ID: i, Addrs: tmpl, Seed: int64(i + 1),
		})
		if err != nil {
			return err
		}
		svcs[i] = s
		addrs[i] = s.Addr()
	}
	fmt.Println("TCP mesh endpoints:")
	for i, a := range addrs {
		fmt.Printf("  p%d %s\n", i, a)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	estErrs := make([]error, cfg.N)
	for i, s := range svcs {
		i, s := i, s
		wg.Add(1)
		go func() {
			defer wg.Done()
			estErrs[i] = s.Establish(ctx, addrs)
		}()
	}
	wg.Wait()
	for i, err := range estErrs {
		if err != nil {
			return fmt.Errorf("establish p%d: %w", i, err)
		}
	}

	// All instances run concurrently over the one pooled mesh: no new
	// connections, no per-instance goroutine mesh — the instance id in the
	// frame header does the demultiplexing.
	start := time.Now()
	decisions := make([][]bvc.Vector, instances) // [instance][process]
	chans := make([][]<-chan bvc.ServiceResult, instances)
	for i := range chans {
		chans[i] = make([]<-chan bvc.ServiceResult, cfg.N)
		for p, s := range svcs {
			ch, err := s.Propose(uint64(i+1), inputFor(p, uint64(i+1)))
			if err != nil {
				return fmt.Errorf("propose instance %d on p%d: %w", i+1, p, err)
			}
			chans[i][p] = ch
		}
	}
	for i := range chans {
		decisions[i] = make([]bvc.Vector, cfg.N)
		for p, ch := range chans[i] {
			r := <-ch
			if r.Err != nil {
				return fmt.Errorf("instance %d on p%d: %w", i+1, p, r.Err)
			}
			decisions[i][p] = r.Decision
		}
	}
	fmt.Printf("all %d instances decided on all %d processes in %v:\n",
		instances, cfg.N, time.Since(start).Round(time.Millisecond))

	// Verify the paper's guarantees per instance: ε-agreement across
	// processes, decision inside the convex hull of the inputs.
	for i, ds := range decisions {
		inst := uint64(i + 1)
		for p := 1; p < cfg.N; p++ {
			for j := 0; j < cfg.D; j++ {
				if diff := ds[p][j] - ds[0][j]; diff > cfg.Epsilon || diff < -cfg.Epsilon {
					return fmt.Errorf("instance %d: ε-agreement violated between p0 and p%d", inst, p)
				}
			}
		}
		inputs := make([]bvc.Vector, cfg.N)
		for p := range inputs {
			inputs[p] = inputFor(p, inst)
		}
		in, err := bvc.InConvexHull(inputs, ds[0])
		if err != nil {
			return err
		}
		if !in {
			return fmt.Errorf("instance %d: decision outside the input hull", inst)
		}
		fmt.Printf("  instance %d → (%.4f, %.4f)  ε-agreement ok, validity ok\n", inst, ds[0][0], ds[0][1])
	}

	st := svcs[0].Stats()
	fmt.Printf("p0 transport: %d frames out / %d in over %d pooled connections (decided %d)\n",
		st.FramesOut, st.FramesIn, cfg.N-1, st.Decided)
	for i, s := range svcs {
		if err := s.Drain(ctx); err != nil {
			return fmt.Errorf("drain p%d: %w", i, err)
		}
	}
	return nil
}
