package bvc

import (
	"errors"
	"fmt"
	"runtime"

	"repro/internal/geometry"
	"repro/internal/hull"
	"repro/internal/safearea"
	"repro/internal/tverberg"
)

// validatePoints checks a public point set for shape and finiteness and
// converts it.
func validatePoints(points []Vector) (*geometry.Multiset, error) {
	if len(points) == 0 {
		return nil, errors.New("bvc: empty point set")
	}
	d := len(points[0])
	if d == 0 {
		return nil, errors.New("bvc: zero-dimensional points")
	}
	ms := geometry.NewMultiset(d)
	for i, p := range points {
		gp := geometry.Vector(p)
		if gp.Dim() != d {
			return nil, fmt.Errorf("bvc: point %d has dimension %d, want %d", i, gp.Dim(), d)
		}
		if !gp.IsFinite() {
			return nil, fmt.Errorf("bvc: point %d has non-finite coordinates", i)
		}
		if err := ms.Add(gp); err != nil {
			return nil, err
		}
	}
	return ms, nil
}

// SafePoint returns a deterministic point of the safe area
//
//	Γ(Y) = ∩_{T ⊆ Y, |T| = |Y|−f} conv(T)
//
// for the multiset Y given by points. Any two callers passing identical
// points (same order, same values) obtain the identical result — the
// property the consensus algorithms rely on. Lemma 1 guarantees existence
// whenever len(points) ≥ (d+1)f+1; below that threshold Γ may be empty, in
// which case an error is returned.
func SafePoint(points []Vector, f int) (Vector, error) {
	return SafePointWith(points, f, MethodAuto)
}

// SafePointWith is SafePoint with an explicit computation strategy.
func SafePointWith(points []Vector, f int, method PointMethod) (Vector, error) {
	ms, err := validatePoints(points)
	if err != nil {
		return nil, err
	}
	m, err := Config{D: ms.Dim(), Method: method}.method()
	if err != nil {
		return nil, err
	}
	pt, err := safearea.PointWith(ms, f, m)
	if err != nil {
		return nil, err
	}
	return fromGeometry(pt), nil
}

// SafeAreaEmpty reports whether Γ(Y) is empty for the given fault bound.
func SafeAreaEmpty(points []Vector, f int) (bool, error) {
	ms, err := validatePoints(points)
	if err != nil {
		return false, err
	}
	return safearea.IsEmpty(ms, f)
}

// SafeAreaContains reports whether z lies in Γ(Y) (within a small geometric
// tolerance). The C(|Y|, f) hull-membership LPs run across GOMAXPROCS
// workers; the verdict is identical to a serial evaluation. Use
// SafeAreaContainsWorkers to bound (or serialize) the fan-out.
func SafeAreaContains(points []Vector, f int, z Vector) (bool, error) {
	return SafeAreaContainsWorkers(points, f, z, 0)
}

// SafeAreaContainsWorkers is SafeAreaContains with an explicit worker bound
// for the per-subset hull-membership LPs: 0 selects GOMAXPROCS, 1 forces
// serial evaluation. Every setting returns the identical verdict and error.
func SafeAreaContainsWorkers(points []Vector, f int, z Vector, workers int) (bool, error) {
	ms, err := validatePoints(points)
	if err != nil {
		return false, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return safearea.ContainsParallel(ms, f, geometry.Vector(z), 0, workers)
}

// InConvexHull reports whether z lies in the convex hull of points (within
// a small geometric tolerance).
func InConvexHull(points []Vector, z Vector) (bool, error) {
	ms, err := validatePoints(points)
	if err != nil {
		return false, err
	}
	if len(z) != ms.Dim() {
		return false, fmt.Errorf("bvc: query dimension %d, want %d", len(z), ms.Dim())
	}
	return hull.Contains(ms.Points(), geometry.Vector(z), 0)
}

// TverbergPartition searches for a partition of points into `parts`
// non-empty blocks whose convex hulls share a common point (Tverberg's
// theorem guarantees one when len(points) ≥ (d+1)(parts−1)+1). It returns
// the blocks as index sets plus a common (Tverberg) point, and reports
// found=false if no partition exists. The search is exhaustive and only
// accepts small inputs (≤ 14 points).
func TverbergPartition(points []Vector, parts int) (blocks [][]int, point Vector, found bool, err error) {
	ms, err := validatePoints(points)
	if err != nil {
		return nil, nil, false, err
	}
	part, ok, err := tverberg.Search(ms, parts)
	if err != nil {
		return nil, nil, false, err
	}
	if !ok {
		return nil, nil, false, nil
	}
	return part.Blocks, fromGeometry(part.Point), true, nil
}

// RadonPartition partitions exactly d+2 points in R^d into two blocks with
// intersecting convex hulls and returns a common (Radon) point — the f=1
// fast path of the Tverberg machinery, computed in O(d³).
func RadonPartition(points []Vector) (blocks [][]int, point Vector, err error) {
	gs := toGeometrySlice(points)
	part, err := tverberg.Radon(gs)
	if err != nil {
		return nil, nil, err
	}
	return part.Blocks, fromGeometry(part.Point), nil
}
