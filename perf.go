package bvc

import "repro/internal/core"

// GammaCounters is a snapshot of the Γ-point engine's process-wide reuse
// counters, quantifying how much of the Γ workload the incremental layers
// absorbed instead of solving from scratch. See the field docs; the
// benchmark tooling (cmd/bvcbench -json, cmd/bvcsweep) records the
// per-measurement deltas, and cmd/benchdiff's reuse report gates on them.
type GammaCounters struct {
	// Solves counts Γ-points computed from scratch (memo misses, or the
	// memoization disabled).
	Solves uint64
	// CacheHits counts full-multiset memo hits: identical candidate sets
	// recurring across processes and rounds (the paper's Observation 2).
	CacheHits uint64
	// PrefixHits counts sub-family memo hits: candidate sets served by an
	// already-solved sibling sharing the method-dependent prefix (first
	// d+2 members on the Radon path, first (d+1)f+1 on the Tverberg-lift
	// path).
	PrefixHits uint64
	// RoundHits counts whole-round reductions served from the round-level
	// memo: AverageGamma calls whose entire ordered tuple sequence was
	// already reduced (identical inboxes across processes).
	RoundHits uint64
}

// ReuseRate returns the fraction of per-candidate-set Γ-point requests
// served without a from-scratch solve. RoundHits are excluded: a round hit
// suppresses its per-set requests entirely.
func (c GammaCounters) ReuseRate() float64 {
	return core.GammaCounters(c).ReuseRate()
}

// Sub returns the counter deltas accumulated since the earlier snapshot.
func (c GammaCounters) Sub(earlier GammaCounters) GammaCounters {
	return GammaCounters(core.GammaCounters(c).Sub(core.GammaCounters(earlier)))
}

// EngineGammaCounters returns the current process-wide Γ-reuse counters,
// accumulated across the default engine and every explicitly configured one.
func EngineGammaCounters() GammaCounters {
	return GammaCounters(core.CountersSnapshot())
}

// ResetEngineGammaCounters zeroes the process-wide Γ-reuse counters.
// Measurement harnesses call it (or snapshot-and-subtract) around a
// measured workload; production code never needs it.
func ResetEngineGammaCounters() {
	core.ResetCounters()
}
