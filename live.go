package bvc

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/geometry"
	"repro/internal/runtime"
	"repro/internal/sim"
	"repro/internal/transport"
)

// The synchronous algorithms require lock-step rounds and therefore run on
// the simulator (Simulate*); the asynchronous algorithms are event-driven
// and run equally on the simulator and on live transports. This file hosts
// the live runners: an in-process goroutine mesh and a TCP full mesh.

// RunAsyncCluster runs the §3.2 asynchronous approximate algorithm with one
// goroutine per process over in-process reliable FIFO channels, and returns
// the decisions in process order. All processes are correct; Byzantine
// behaviour and adversarial scheduling belong to the simulator, the OS
// scheduler supplies real asynchrony here.
func RunAsyncCluster(ctx context.Context, cfg Config, inputs []Vector) ([]Vector, error) {
	acfg, err := cfg.asyncConfig()
	if err != nil {
		return nil, err
	}
	if len(inputs) != cfg.N {
		return nil, fmt.Errorf("bvc: %d inputs for n=%d", len(inputs), cfg.N)
	}
	// Halting at decision keeps the cluster's goroutines finite; it is
	// always live when every process is correct (and in general for f ≤ 1;
	// see core.AsyncConfig).
	acfg.HaltWhenDecided = true

	nodes := make([]sim.Node, cfg.N)
	impls := make([]*core.AsyncNode, cfg.N)
	for i := 0; i < cfg.N; i++ {
		nd, err := core.NewAsyncNode(acfg, sim.ProcID(i), toGeometry(inputs[i]))
		if err != nil {
			return nil, fmt.Errorf("bvc: process %d: %w", i, err)
		}
		impls[i] = nd
		nodes[i] = nd
	}
	if err := runtime.RunCluster(ctx, nodes, 1); err != nil {
		return nil, err
	}
	out := make([]Vector, cfg.N)
	for i, nd := range impls {
		dec, err := nd.Decision()
		if err != nil {
			return nil, fmt.Errorf("bvc: process %d: %w", i, err)
		}
		out[i] = fromGeometry(dec)
	}
	return out, nil
}

// TCPProcess is one process of a TCP-meshed asynchronous BVC cluster. Use
// NewTCPProcess on every participating host, exchange listen addresses out
// of band, then call Run.
type TCPProcess struct {
	cfg  Config
	id   int
	node *core.AsyncNode
	tr   *transport.TCPNode

	mu       sync.Mutex
	decision geometry.Vector
}

// NewTCPProcess opens the listener for process id (listening on addrs[id],
// which may use port 0 — see Addr). The mesh is established and the
// algorithm runs when Run is called.
func NewTCPProcess(cfg Config, id int, addrs []string, input Vector) (*TCPProcess, error) {
	acfg, err := cfg.asyncConfig()
	if err != nil {
		return nil, err
	}
	acfg.HaltWhenDecided = true
	node, err := core.NewAsyncNode(acfg, sim.ProcID(id), toGeometry(input))
	if err != nil {
		return nil, err
	}
	tr, err := transport.NewTCP(transport.TCPConfig{ID: id, Addrs: addrs})
	if err != nil {
		return nil, err
	}
	return &TCPProcess{cfg: cfg, id: id, node: node, tr: tr}, nil
}

// Addr returns the actual listen address (useful when configured with port
// 0).
func (p *TCPProcess) Addr() string { return p.tr.Addr() }

// Run establishes the TCP mesh against the given final address list (nil
// reuses the construction-time addresses), executes the algorithm until
// decision or context cancellation, and returns the decided vector.
func (p *TCPProcess) Run(ctx context.Context, addrs []string) (Vector, error) {
	if err := p.tr.Establish(ctx, addrs); err != nil {
		return nil, err
	}
	host, err := runtime.NewHost(p.id, p.cfg.N, p.tr, p.node, int64(p.id))
	if err != nil {
		return nil, err
	}
	if err := host.Run(ctx); err != nil {
		return nil, err
	}
	dec, err := p.node.Decision()
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.decision = dec
	p.mu.Unlock()
	return fromGeometry(dec), nil
}

// Close releases the process's network resources.
func (p *TCPProcess) Close() error { return p.tr.Close() }
