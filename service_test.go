package bvc

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestServiceWrapperEndToEnd(t *testing.T) {
	const n = 5
	cfg := Config{N: n, F: 1, D: 2, Epsilon: 0.05, Lo: []float64{0}, Hi: []float64{1}, MaxRounds: 4}
	svcs := make([]*Service, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		tmpl := make([]string, n)
		for j := range tmpl {
			tmpl[j] = "127.0.0.1:0"
		}
		s, err := NewService(ServiceConfig{Config: cfg, ID: i, Addrs: tmpl, Seed: int64(i + 1)})
		if err != nil {
			t.Fatalf("NewService(%d): %v", i, err)
		}
		t.Cleanup(func() { _ = s.Close() })
		svcs[i] = s
		addrs[i] = s.Addr()
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i, s := range svcs {
		i, s := i, s
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = s.Establish(context.Background(), addrs)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("Establish(%d): %v", i, err)
		}
	}

	inputs := []Vector{{0.1, 0.9}, {0.2, 0.8}, {0.9, 0.1}, {0.5, 0.5}, {0.3, 0.7}}
	chans := make([]<-chan ServiceResult, n)
	for i, s := range svcs {
		ch, err := s.Propose(42, inputs[i])
		if err != nil {
			t.Fatalf("Propose(%d): %v", i, err)
		}
		chans[i] = ch
	}
	for i, ch := range chans {
		select {
		case res := <-ch:
			if res.Err != nil {
				t.Fatalf("process %d: %v", i, res.Err)
			}
			if len(res.Decision) != 2 {
				t.Fatalf("process %d: decision %v", i, res.Decision)
			}
			for _, x := range res.Decision {
				if x < 0 || x > 1 {
					t.Fatalf("process %d: decision %v outside bounds", i, res.Decision)
				}
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("process %d: no result", i)
		}
	}
	if st := svcs[0].Stats(); st.Decided != 1 || st.FramesOut == 0 {
		t.Fatalf("stats: %+v", st)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svcs[0].Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if _, err := svcs[0].Propose(43, inputs[0]); !errors.Is(err, ErrServiceDraining) {
		t.Fatalf("Propose after Drain: %v, want ErrServiceDraining", err)
	}
}
