package bvc

import (
	"context"
	"net"
	"time"

	"repro/internal/service"
)

// This file is the public face of the multi-tenant live consensus service
// (internal/service): many concurrent instances of the §3.2 asynchronous
// approximate algorithm multiplexed over one pooled full mesh of
// persistent TCP connections. Operator documentation — lifecycle, wire
// protocol, backpressure policy, load testing — lives in docs/SERVICE.md
// and docs/WIRE_FORMAT.md.

// Service errors, re-exported for errors.Is against ServiceResult.Err.
var (
	// ErrServiceClosed is returned by operations on a closed service and
	// reported for instances in flight when it closed.
	ErrServiceClosed = service.ErrServiceClosed
	// ErrServiceDraining is returned by Propose after Drain.
	ErrServiceDraining = service.ErrDraining
	// ErrDuplicateInstance is reported for a Propose reusing a live or
	// recently finished instance id.
	ErrDuplicateInstance = service.ErrDuplicateInstance
	// ErrInstanceTimeout is reported for instances that exceeded
	// ServiceConfig.InstanceTimeout before deciding.
	ErrInstanceTimeout = service.ErrInstanceTimeout
	// ErrStaleEpoch rejects a Reconfigure whose epoch does not advance
	// the membership clock.
	ErrStaleEpoch = service.ErrStaleEpoch
)

// Membership names one epoch of a service mesh's configuration: a
// monotonically numbered address list (process ids are stable; the size
// never changes) plus the shared handshake key. Pass it to Reconfigure
// on a running survivor to replace or re-address members, and to
// NewService (via ServiceConfig.Epoch and Addrs) to start a replacement
// process under the new epoch. See docs/SERVICE.md, "Membership and
// epochs".
type Membership = service.Membership

// SlowPeerPolicy selects the service's behavior when a peer cannot keep up
// with its outbound frame queue.
type SlowPeerPolicy int

// Slow-peer policies.
const (
	// BlockSlowPeer (the default) blocks the sender until the peer's
	// queue drains: backpressure propagates to Propose and the reliable-
	// channel model of the paper is preserved while the peer is up.
	BlockSlowPeer SlowPeerPolicy = iota
	// ShedSlowPeer drops frames to the slow peer and counts them
	// (ServiceStats.SlowPeerSheds). The slow peer then looks partially
	// crashed, which the algorithm tolerates for up to f peers.
	ShedSlowPeer
)

// ServiceTransport abstracts the service's network surface — listener
// creation, outbound dials, and inbound connection adoption — so tests
// and chaos tooling (internal/chaos) can inject faults between
// processes. The zero value of ServiceConfig uses the real network.
type ServiceTransport interface {
	// Listen binds the process's listener.
	Listen(addr string) (net.Listener, error)
	// Dial opens an outbound connection to the given peer id at addr.
	Dial(ctx context.Context, peer int, addr string) (net.Conn, error)
	// Accepted adopts an inbound connection after the handshake
	// identified the peer; the returned conn replaces the original.
	Accepted(peer int, conn net.Conn) net.Conn
}

// ServiceConfig configures one process of a consensus service mesh.
type ServiceConfig struct {
	// Config is the consensus configuration every instance runs (the
	// asynchronous §3.2 variant); its N must equal len(Addrs).
	Config
	// ID is this process's id, indexing Addrs.
	ID int
	// Addrs lists every process's listen address; Addrs[ID] may use port 0
	// (Addr reports the bound address, Establish takes the final list).
	Addrs []string
	// Shards is the instance-shard goroutine count; 0 means
	// min(GOMAXPROCS, 4). Instance id modulo Shards picks the shard.
	Shards int
	// OutboxDepth bounds each peer's outbound frame queue (default 1024).
	OutboxDepth int
	// QueueDepth bounds each shard's inbound frame queue (default 4096).
	QueueDepth int
	// PendingLimit bounds per-instance buffering of frames that arrive
	// before the local Propose (default 4096).
	PendingLimit int
	// SlowPeer selects the full-outbox policy (default BlockSlowPeer).
	SlowPeer SlowPeerPolicy
	// InstanceTimeout fails undecided instances after this long (default
	// 30s). LingerTimeout bounds how long a decided instance keeps
	// serving the protocol for lagging peers (default: InstanceTimeout).
	InstanceTimeout time.Duration
	LingerTimeout   time.Duration
	// EstablishTimeout bounds mesh establishment and reconnect attempts
	// (default 10s); DialBackoff/MaxDialBackoff shape dial retry
	// (defaults 25ms/500ms).
	EstablishTimeout time.Duration
	DialBackoff      time.Duration
	MaxDialBackoff   time.Duration
	// Seed feeds the per-instance PRNG streams.
	Seed int64
	// Transport overrides the service's network surface (nil: the real
	// network). Used by tests and the chaos harness to inject faults.
	Transport ServiceTransport
	// AuthKey, when non-empty, enables the mutual HMAC-SHA256 handshake:
	// every connection must prove knowledge of this shared key before it
	// joins the mesh. All processes must agree on the key (or all leave
	// it empty for the plain handshake).
	AuthKey []byte
	// SuspectAfter is the number of consecutive dial failures before a
	// peer is counted in ServiceStats.SuspectedPeers (default 3).
	SuspectAfter int
	// Epoch is the membership epoch this process is born at (0 for a
	// static mesh). A replacement process joining a reconfigured mesh
	// starts with the new Membership's epoch and address list.
	Epoch uint64
}

// ServiceResult is one finished instance as seen by this process.
type ServiceResult struct {
	// Instance is the instance id.
	Instance uint64
	// Epoch is the membership epoch the instance was pinned to at
	// Propose time.
	Epoch uint64
	// Decision is the decided vector (nil when Err is set).
	Decision Vector
	// Rounds is the instance's termination round count.
	Rounds int
	// Elapsed is the local propose-to-decision latency.
	Elapsed time.Duration
	// Err is nil on decision, or one of the Err* sentinels / a protocol
	// failure.
	Err error
}

// ServiceStats is a point-in-time snapshot of one service process's
// counters; see the field docs on the internal/service Stats type for the
// exact semantics of each counter.
type ServiceStats struct {
	// ActiveInstances counts open undecided instances; Lingering counts
	// decided instances still serving lagging peers (both gauges).
	ActiveInstances, Lingering int64
	// Proposed/Decided/TimedOut/Failed count instance outcomes.
	Proposed, Decided, TimedOut, Failed int64
	// FramesIn/FramesOut/BytesIn/BytesOut count wire traffic.
	FramesIn, FramesOut, BytesIn, BytesOut int64
	// SlowPeerSheds/WriteDrops count frames lost to the shed policy and
	// to outbox overflow against a disconnected peer; WriteRetries
	// counts frames resent after a failed write (at-least-once delivery
	// on live links); PendingFrames/PendingDropped track pre-Propose
	// buffering; Reconnects/ReadErrors track link health.
	SlowPeerSheds, WriteDrops     int64
	WriteRetries                  int64
	PendingFrames, PendingDropped int64
	Reconnects, ReadErrors        int64
	// DialFailures/OutboxStalls feed the per-peer suspicion ladder;
	// LingerExtensions counts partition-aware linger window extensions;
	// AuthFailures counts inbound connections the keyed handshake
	// rejected.
	DialFailures, OutboxStalls int64
	LingerExtensions           int64
	AuthFailures               int64
	// SuspectedPeers is the number of peers currently suspected (gauge).
	SuspectedPeers int
	// QueueDepth is the total frames currently queued toward peers.
	QueueDepth int
	// Epoch is the current membership epoch (gauge); Reconfigures counts
	// adopted membership changes; EpochAnnounces/EpochAcks count the
	// config-propagation frames sent/acknowledged; StaleEpochRejects
	// counts handshakes refused for claiming an unheld epoch;
	// RetiredEpochs counts superseded link sets torn down after their
	// last pinned instance tombstoned.
	Epoch                     uint64
	Reconfigures              int64
	EpochAnnounces, EpochAcks int64
	StaleEpochRejects         int64
	RetiredEpochs             int64
}

// Service is one process of a multi-tenant live consensus mesh: Propose
// opens instances concurrently from any goroutine, and all instances share
// the process's n−1 pooled connections. Construct with NewService on every
// process, exchange addresses out of band, then Establish.
type Service struct {
	inner *service.Service
}

// NewService validates the configuration, binds the listener, and starts
// the service's shard pool and connection writers; Establish builds the
// mesh.
func NewService(cfg ServiceConfig) (*Service, error) {
	acfg, err := cfg.Config.asyncConfig()
	if err != nil {
		return nil, err
	}
	inner, err := service.New(service.Config{
		Node:             acfg,
		ID:               cfg.ID,
		Addrs:            cfg.Addrs,
		Shards:           cfg.Shards,
		OutboxDepth:      cfg.OutboxDepth,
		QueueDepth:       cfg.QueueDepth,
		PendingLimit:     cfg.PendingLimit,
		SlowPeer:         service.Policy(cfg.SlowPeer),
		InstanceTimeout:  cfg.InstanceTimeout,
		LingerTimeout:    cfg.LingerTimeout,
		EstablishTimeout: cfg.EstablishTimeout,
		DialBackoff:      cfg.DialBackoff,
		MaxDialBackoff:   cfg.MaxDialBackoff,
		Seed:             cfg.Seed,
		Transport:        cfg.Transport,
		AuthKey:          cfg.AuthKey,
		SuspectAfter:     cfg.SuspectAfter,
		Epoch:            cfg.Epoch,
	})
	if err != nil {
		return nil, err
	}
	return &Service{inner: inner}, nil
}

// Addr returns the bound listen address (useful with port-0 configs).
func (s *Service) Addr() string { return s.inner.Addr() }

// Establish connects the full mesh and returns once every link is up or
// the establish timeout expires. A non-nil addrs overrides the
// construction-time address list (the port-0 flow).
func (s *Service) Establish(ctx context.Context, addrs []string) error {
	return s.inner.Establish(ctx, addrs)
}

// Propose opens consensus instance id with this process's input. Every
// process of the mesh must eventually propose the same id. The result is
// delivered exactly once on the returned channel.
func (s *Service) Propose(id uint64, input Vector) (<-chan ServiceResult, error) {
	ch, err := s.inner.Propose(id, toGeometry(input))
	if err != nil {
		return nil, err
	}
	out := make(chan ServiceResult, 1)
	go func() {
		r := <-ch
		out <- ServiceResult{
			Instance: r.Instance,
			Epoch:    r.Epoch,
			Decision: fromGeometry(r.Decision),
			Rounds:   r.Rounds,
			Elapsed:  r.Elapsed,
			Err:      r.Err,
		}
	}()
	return out, nil
}

// Drain refuses new proposals, announces the wind-down to peers, and
// returns once every in-flight instance finished or ctx expired.
func (s *Service) Drain(ctx context.Context) error { return s.inner.Drain(ctx) }

// Close releases the listener, connections, and goroutines; in-flight
// instances fail with ErrServiceClosed. Drain first for a graceful stop.
func (s *Service) Close() error { return s.inner.Close() }

// Err returns the first background transport error the service observed
// (nil while healthy; peer disconnects and reconnects are not errors).
func (s *Service) Err() error { return s.inner.Err() }

// Stats returns a snapshot of the service's counters.
func (s *Service) Stats() ServiceStats {
	st := s.inner.Stats()
	return ServiceStats{
		ActiveInstances:  st.ActiveInstances,
		Lingering:        st.Lingering,
		Proposed:         st.Proposed,
		Decided:          st.Decided,
		TimedOut:         st.TimedOut,
		Failed:           st.Failed,
		FramesIn:         st.FramesIn,
		FramesOut:        st.FramesOut,
		BytesIn:          st.BytesIn,
		BytesOut:         st.BytesOut,
		SlowPeerSheds:    st.SlowPeerSheds,
		WriteDrops:       st.WriteDrops,
		WriteRetries:     st.WriteRetries,
		PendingFrames:    st.PendingFrames,
		PendingDropped:   st.PendingDropped,
		Reconnects:       st.Reconnects,
		ReadErrors:       st.ReadErrors,
		DialFailures:     st.DialFailures,
		OutboxStalls:     st.OutboxStalls,
		LingerExtensions: st.LingerExtensions,
		AuthFailures:     st.AuthFailures,
		SuspectedPeers:   st.SuspectedPeers,
		QueueDepth:       st.QueueDepth,

		Epoch:             st.Epoch,
		Reconfigures:      st.Reconfigures,
		EpochAnnounces:    st.EpochAnnounces,
		EpochAcks:         st.EpochAcks,
		StaleEpochRejects: st.StaleEpochRejects,
		RetiredEpochs:     st.RetiredEpochs,
	}
}

// KillConn severs the current connection to the given peer, if any; the
// pool redials and the mesh self-heals. A fault-injection hook for tests
// and the chaos harness.
func (s *Service) KillConn(peer int) { s.inner.KillConn(peer) }

// Epoch returns the current membership epoch.
func (s *Service) Epoch() uint64 { return s.inner.Epoch() }

// Reconfigure moves the mesh to membership m without stopping the
// service: m.Epoch must exceed the current epoch and m.Addrs must be the
// same size as the mesh (replace or re-address members; n is fixed).
// New proposals pin the new epoch immediately; in-flight and lingering
// instances keep deciding on their birth epoch's links, whose set is
// retired once its last pinned instance tombstones. The new config
// propagates to every peer via EpochAnnounce, so reconfiguring one
// survivor reconfigures the mesh; start the replacement process
// separately with the new epoch and address list.
func (s *Service) Reconfigure(m Membership) error { return s.inner.Reconfigure(m) }
