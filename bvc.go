// Package bvc is a Go implementation of Byzantine vector consensus (BVC)
// from Vaidya & Garg, "Byzantine Vector Consensus in Complete Graphs"
// (PODC 2013): n processes, each holding a d-dimensional vector, agree on a
// vector guaranteed to lie inside the convex hull of the correct processes'
// inputs, despite up to f Byzantine processes.
//
// The package provides:
//
//   - Exact BVC for synchronous systems (n ≥ max(3f+1, (d+1)f+1)),
//   - Approximate BVC for asynchronous systems (n ≥ (d+2)f+1), with the
//     paper's Appendix-F witness optimization,
//   - the restricted-round variants of §4 (n ≥ (d+2)f+1 synchronous,
//     n ≥ (d+4)f+1 asynchronous),
//   - the coordinate-wise scalar-consensus baseline the paper's
//     introduction warns about,
//   - deterministic simulation (seeded adversarial schedules, Byzantine
//     behaviour library, execution verification), and
//   - live execution of the asynchronous algorithms over in-process
//     goroutine meshes or TCP,
//   - the underlying computational geometry: safe areas Γ(Y), convex-hull
//     membership, Radon and Tverberg partitions.
//
// Quick start: see examples/quickstart, or:
//
//	cfg := bvc.Config{N: 5, F: 1, D: 2}
//	res, err := bvc.SimulateExact(cfg, inputs, nil, bvc.SimOptions{Seed: 1})
//	// res.Processes[i].Decision is in the convex hull of correct inputs.
//
// # Performance
//
// Every algorithm bottoms out in the same hot path: computing deterministic
// points of safe areas Γ(Y) — C(n, n−f) linear-program solves per candidate
// set per round. That path runs on a dedicated Γ-point engine
// (internal/core.Engine) which is allocation-free in steady state (the
// simplex solver reuses flat tableau slabs through internal/lp.Workspace),
// parallel (candidate-set solves are streamed by subset rank across a
// bounded worker pool) and memoized (by the paper's Observation 2, every
// correct process computes the identical point zij for the same candidate
// set, so identical solves — across the n simulated processes, and across
// rounds — collapse to one, keyed by the canonical bit-exact multiset key).
//
// Two SimOptions knobs control the engine; both are pure performance knobs,
// guaranteed to leave results bit-identical:
//
//   - Workers bounds concurrent Γ-point solves (0 = GOMAXPROCS, 1 = serial).
//     Parallel runs reduce results in subset-rank order, so output matches
//     the serial computation exactly.
//   - DisableGammaCache switches the memoization off (for measurement; the
//     cache is exact, bounded, and dropped wholesale when full).
//
// The cmd/bvcbench -json mode records per-experiment ns/op and allocs/op so
// perf trajectories can be tracked across changes.
package bvc

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/geometry"
	"repro/internal/safearea"
)

// Vector is a point in R^d. Plain []float64 keeps the API friction-free;
// all functions validate dimensions and finiteness at the boundary.
type Vector = []float64

// Config is the common configuration of every algorithm.
type Config struct {
	// N is the number of processes; F the maximum number of Byzantine
	// processes; D the vector dimension.
	N, F, D int
	// Epsilon is the ε of ε-agreement (approximate variants). Correct
	// processes' decisions differ by at most ε in every coordinate.
	Epsilon float64
	// Lo and Hi are the a-priori per-coordinate input bounds ([ν, U] in
	// the paper), required by the approximate variants. Length D, or
	// length 1 meaning a uniform bound for every coordinate.
	Lo, Hi []float64
	// WitnessOptimization selects the Appendix-F construction of Zi
	// (|Zi| ≤ n, contraction weight γ = 1/n²) for the asynchronous
	// algorithm.
	WitnessOptimization bool
	// MaxRounds, when positive, overrides the analytic termination round
	// bound of the approximate variants (§3.2 asynchronous and both §4
	// restricted algorithms) with a fixed horizon. The analytic bound grows
	// like 1/γ, and γ decays combinatorially in n for the restricted
	// variants, so large-n runs use a γ-aware horizon and are judged by
	// per-round contraction plus validity instead of full ε-termination
	// (see internal/harness.GammaBudget and experiment E10).
	MaxRounds int
	// Method selects how the deterministic point of a safe area Γ(Y) is
	// computed; MethodAuto (the zero value's replacement) picks closed
	// forms and fast paths automatically.
	Method PointMethod
}

// PointMethod selects the Γ-point computation strategy.
type PointMethod int

// Γ-point strategies (docs/ARCHITECTURE.md describes the method ladder;
// experiment E3 and the bench_test.go ablation benchmarks compare them).
const (
	// MethodAuto picks the cheapest applicable strategy: a closed form
	// for d = 1, the Radon point for f = 1, the lifted Tverberg search
	// for f ≥ 2 above the Lemma 1 threshold, else the lex-min LP.
	MethodAuto PointMethod = iota + 1
	// MethodLexMinLP always solves the paper's §2.2 linear program,
	// returning the lexicographically minimal point of Γ(Y).
	MethodLexMinLP
	// MethodRadon uses the O(d³) Radon-point fast path (requires f = 1).
	MethodRadon
	// MethodTverbergSearch exhaustively searches for a Tverberg partition
	// (small inputs only; mainly for validation).
	MethodTverbergSearch
	// MethodTverbergLift computes a Tverberg point via Sarkaria's lifted
	// colorful-Carathéodory search — polynomial for any f, the strategy
	// that makes d ≥ 2, f ≥ 2 grids practical. Verified geometrically,
	// with the lex-min LP as deterministic fallback.
	MethodTverbergLift
)

// Variant identifies one of the paper's algorithms.
type Variant int

// Algorithm variants.
const (
	// ExactSync is Exact BVC in a synchronous system (§2.2).
	ExactSync Variant = iota + 1
	// ApproxAsync is approximate BVC in an asynchronous system (§3.2).
	ApproxAsync
	// RestrictedSync is the restricted-round synchronous algorithm (§4).
	RestrictedSync
	// RestrictedAsync is the restricted-round asynchronous algorithm (§4).
	RestrictedAsync
)

// MinProcesses returns the paper's tight process-count bound for a variant:
// max(3f+1, (d+1)f+1), (d+2)f+1, (d+2)f+1 and (d+4)f+1 respectively.
func MinProcesses(v Variant, d, f int) int {
	return core.MinProcesses(coreVariant(v), d, f)
}

// Gamma returns the analytic per-round contraction weight γ of an
// approximate variant; the correct processes' per-coordinate range shrinks
// by at least the factor 1−γ every asynchronous round.
func Gamma(v Variant, n, f int, witnessOpt bool) float64 {
	return core.Gamma(coreVariant(v), n, f, witnessOpt)
}

// RoundBound returns the paper's termination round count
// 1 + ⌈log_{1/(1−γ)} (range/ε)⌉.
func RoundBound(gamma, valueRange, epsilon float64) int {
	return core.RoundBound(gamma, valueRange, epsilon)
}

func coreVariant(v Variant) core.Variant {
	switch v {
	case ExactSync:
		return core.VariantExactSync
	case ApproxAsync:
		return core.VariantApproxAsync
	case RestrictedSync:
		return core.VariantRestrictedSync
	case RestrictedAsync:
		return core.VariantRestrictedAsync
	default:
		return 0
	}
}

// params converts a Config to the internal parameter form.
func (c Config) params() (core.Params, error) {
	method, err := c.method()
	if err != nil {
		return core.Params{}, err
	}
	p := core.Params{
		N: c.N, F: c.F, D: c.D,
		Epsilon:   c.Epsilon,
		Method:    method,
		MaxRounds: c.MaxRounds,
	}
	box, err := c.box()
	if err != nil {
		return core.Params{}, err
	}
	p.Bounds = box
	return p, nil
}

func (c Config) method() (safearea.Method, error) {
	switch c.Method {
	case 0, MethodAuto:
		return safearea.MethodAuto, nil
	case MethodLexMinLP:
		return safearea.MethodLexMinLP, nil
	case MethodRadon:
		return safearea.MethodRadon, nil
	case MethodTverbergSearch:
		return safearea.MethodTverbergSearch, nil
	case MethodTverbergLift:
		return safearea.MethodTverbergLift, nil
	default:
		return 0, fmt.Errorf("bvc: unknown point method %d", c.Method)
	}
}

// box materializes the [Lo, Hi] input box; a nil Lo/Hi pair yields the
// degenerate box only exact variants accept.
func (c Config) box() (geometry.Box, error) {
	expand := func(b []float64) (geometry.Vector, error) {
		switch len(b) {
		case c.D:
			return geometry.Vector(b).Clone(), nil
		case 1:
			out := geometry.NewVector(c.D)
			for i := range out {
				out[i] = b[0]
			}
			return out, nil
		default:
			return nil, fmt.Errorf("bvc: bound length %d, want %d or 1", len(b), c.D)
		}
	}
	if c.Lo == nil && c.Hi == nil {
		return geometry.Box{Lo: geometry.NewVector(c.D), Hi: geometry.NewVector(c.D)}, nil
	}
	lo, err := expand(c.Lo)
	if err != nil {
		return geometry.Box{}, err
	}
	hi, err := expand(c.Hi)
	if err != nil {
		return geometry.Box{}, err
	}
	return geometry.Box{Lo: lo, Hi: hi}, nil
}

// asyncConfig converts a Config for the asynchronous algorithm.
func (c Config) asyncConfig() (core.AsyncConfig, error) {
	p, err := c.params()
	if err != nil {
		return core.AsyncConfig{}, err
	}
	return core.AsyncConfig{
		Params:     p,
		WitnessOpt: c.WitnessOptimization,
		MaxRounds:  c.MaxRounds,
	}, nil
}

// toGeometry converts a public vector, validating nothing (validation
// happens in the algorithm constructors).
func toGeometry(v Vector) geometry.Vector {
	return geometry.Vector(v).Clone()
}

// fromGeometry converts an internal vector to the public form.
func fromGeometry(v geometry.Vector) Vector {
	if v == nil {
		return nil
	}
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

func toGeometrySlice(vs []Vector) []geometry.Vector {
	out := make([]geometry.Vector, len(vs))
	for i, v := range vs {
		out[i] = toGeometry(v)
	}
	return out
}

// ProcessResult is one process's view of a finished run.
type ProcessResult struct {
	ID        int
	Byzantine bool
	// Input is the process's input (correct processes only).
	Input Vector
	// Decision is the decided vector; nil for Byzantine processes.
	Decision Vector
	// Rounds is the number of algorithm rounds the process executed.
	Rounds int
	// History, when recorded, holds the state after every round starting
	// with the input (approximate variants only).
	History []Vector
}

// Result is a finished consensus run.
type Result struct {
	Variant   Variant
	Config    Config
	Processes []ProcessResult
	// Messages is the total number of point-to-point messages carried.
	Messages int64
	// VirtualTime is the simulated clock at completion (simulation only).
	VirtualTime time.Duration
}

// execution converts the result for verification.
func (r *Result) execution() *core.Execution {
	ex := &core.Execution{D: r.Config.D, F: r.Config.F}
	for _, p := range r.Processes {
		o := core.Outcome{ID: p.ID, Correct: !p.Byzantine}
		if !p.Byzantine {
			o.Input = geometry.Vector(p.Input)
			if p.Decision != nil {
				o.Decision = geometry.Vector(p.Decision)
			}
		}
		ex.Outcomes = append(ex.Outcomes, o)
	}
	return ex
}

// VerifyExact checks Agreement, Validity and Termination (Exact BVC
// definitions, paper §1) and returns the first violation.
func (r *Result) VerifyExact() error {
	return r.execution().VerifyExact(0)
}

// VerifyApprox checks ε-Agreement, Validity and Termination (approximate
// BVC definitions, paper §1).
func (r *Result) VerifyApprox() error {
	return r.execution().VerifyApprox(r.Config.Epsilon, 0)
}

// VerifyValidity checks only the validity condition: every correct decision
// lies in the convex hull of the correct inputs.
func (r *Result) VerifyValidity() error {
	return r.execution().VerifyValidity(0)
}

// Decisions returns the correct processes' decisions in process order.
func (r *Result) Decisions() []Vector {
	var out []Vector
	for _, p := range r.Processes {
		if !p.Byzantine && p.Decision != nil {
			out = append(out, p.Decision)
		}
	}
	return out
}
