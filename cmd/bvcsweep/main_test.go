package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestMain lets the coordinator's worker processes re-exec this test
// binary as if it were the bvcsweep binary: the coordinator always sets
// BVCSWEEP_WORKER_PROC=1 on spawned workers (the production binary
// ignores it), and here it reroutes into realMain before the test
// framework takes over.
func TestMain(m *testing.M) {
	if os.Getenv("BVCSWEEP_WORKER_PROC") == "1" {
		os.Exit(realMain(os.Args[1:]))
	}
	os.Exit(m.Run())
}

func tinySpec() Spec {
	return Spec{
		Name:        "tiny",
		Variants:    []string{"exact", "rsync"},
		Dims:        []int{2},
		Faults:      []int{1},
		Adversaries: []string{"none", "equivocate"},
		Seeds:       []int64{1, 2},
	}
}

func writeSpec(t *testing.T, dir string, s Spec) string {
	t.Helper()
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestExpandDeterministic(t *testing.T) {
	s1, s2 := tinySpec(), tinySpec()
	u1, err := s1.Expand()
	if err != nil {
		t.Fatal(err)
	}
	u2, err := s2.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(u1, u2) {
		t.Fatal("two expansions of the same spec differ")
	}
	want := []string{
		"sweep/exact/n4d2f1/none/none/s1",
		"sweep/exact/n4d2f1/none/none/s2",
		"sweep/exact/n4d2f1/equivocate/none/s1",
		"sweep/exact/n4d2f1/equivocate/none/s2",
		"sweep/rsync/n5d2f1/none/none/s1",
		"sweep/rsync/n5d2f1/none/none/s2",
		"sweep/rsync/n5d2f1/equivocate/none/s1",
		"sweep/rsync/n5d2f1/equivocate/none/s2",
	}
	if len(u1) != len(want) {
		t.Fatalf("expanded to %d units, want %d", len(u1), len(want))
	}
	for i, u := range u1 {
		if u.Name != want[i] || u.Index != i {
			t.Errorf("unit %d = %q (index %d), want %q", i, u.Name, u.Index, want[i])
		}
	}
}

// TestExpandCanonicalizes: synchronous variants collapse the delay axis
// and explicit Procs repeating the tight bound deduplicate, so a spec
// carrying redundant axes expands to the same canonical unit set.
func TestExpandCanonicalizes(t *testing.T) {
	s := tinySpec()
	s.Delays = []string{"constant", "exponential"} // sync variants ignore it
	s.Procs = []int{4, 5}                          // 4 = exact tight bound, 5 = rsync's
	units, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, u := range units {
		if seen[u.Name] {
			t.Errorf("duplicate unit %q", u.Name)
		}
		seen[u.Name] = true
	}
	// exact at n=4 and n=5, rsync at n=5 only (n=4 is below its bound):
	// 3 (variant, n) pairs × 2 adversaries × 2 seeds.
	if len(units) != 12 {
		t.Errorf("expanded to %d units, want 12", len(units))
	}
}

func TestExpandExperimentsAndSlack(t *testing.T) {
	s := Spec{
		Variants:    []string{"exact"},
		Dims:        []int{2},
		Faults:      []int{1},
		Procs:       []int{4, 5, 6, 11},
		MaxSlack:    2,
		Experiments: []string{"e1", "e10"},
	}
	units, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, u := range units {
		names = append(names, u.Name)
	}
	want := []string{
		// Experiments lead; e10 brings its serial companion and the
		// committed n = 15 restricted/async row measurements.
		"e1", "e10", "e10/nodeworkers=1", "e10/rsync-n15", "e10/approx-n15",
		"e10/rsync-n11", "e10/rasync-n13",
		"sweep/exact/n4d2f1/none/none/s1",
		"sweep/exact/n5d2f1/none/none/s1",
		"sweep/exact/n6d2f1/none/none/s1", // n=11 dropped: slack 7 > 2
	}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("expansion = %v, want %v", names, want)
	}
	for _, u := range units {
		if u.Kind == UnitExperiment && u.Name == "e10/nodeworkers=1" && !u.SerialNodes {
			t.Errorf("e10/nodeworkers=1 should carry SerialNodes")
		}
	}
}

// TestExpandFragileCells: formerly fragile restricted f ≥ 2 cells
// (harness.SweepCell.FragileGamma) run by default now that the revised
// simplex core retired the dense solver's failure mode; exclude_fragile
// remains as an escape hatch.
func TestExpandFragileCells(t *testing.T) {
	s := Spec{
		Variants: []string{"rsync", "rasync"},
		Dims:     []int{3},
		Faults:   []int{2},
		Procs:    []int{11, 13, 15},
	}
	units, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// 3 rsync (n ∈ {11, 13, 15}, the tight-bound n=11 cell included) +
	// 1 rasync (its d=3, f=2 tight bound is n = 15; 11 and 13 are below
	// it).
	if len(units) != 4 {
		t.Errorf("default expansion has %d units, want 4", len(units))
	}

	s.ExcludeFragile = true
	units, err = s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, u := range units {
		names = append(names, u.Name)
	}
	// rsync tight bound n=11 is at the Lemma-1 threshold (formerly
	// fragile); n=13 and n=15 are above it. rasync f=2 is in the regime
	// throughout.
	want := []string{
		"sweep/rsync/n13d3f2/none/none/s1",
		"sweep/rsync/n15d3f2/none/none/s1",
	}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("exclude_fragile expansion = %v, want %v", names, want)
	}
}

func TestExpandRejectsUnknownAxes(t *testing.T) {
	for _, s := range []Spec{
		{Variants: []string{"warp"}},
		{Adversaries: []string{"polite"}},
		{Delays: []string{"sometimes"}},
		{Experiments: []string{"e99"}},
	} {
		if _, err := s.Expand(); err == nil {
			t.Errorf("spec %+v expanded without error", s)
		}
	}
}

func TestFingerprintStableUnderNormalization(t *testing.T) {
	s1 := tinySpec()
	s2 := tinySpec()
	if err := s2.normalize(); err != nil { // pre-normalized vs raw must agree
		t.Fatal(err)
	}
	if s1.Fingerprint() != s2.Fingerprint() {
		t.Error("fingerprint changes under normalization")
	}
	s3 := tinySpec()
	s3.Seeds = []int64{1, 3}
	if s1.Fingerprint() == s3.Fingerprint() {
		t.Error("different specs share a fingerprint")
	}
}

// TestWorkerShardAssignment runs a worker in-process and checks it
// executes exactly its own shard's units, in index order, calibration
// first.
func TestWorkerShardAssignment(t *testing.T) {
	spec := tinySpec()
	units, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	const shards = 3
	order := workOrder{Spec: spec, Shard: 1, Shards: shards, GammaCache: true}
	payload, _ := json.Marshal(order)
	var stdout, stderr bytes.Buffer
	if err := runWorker(bytes.NewReader(payload), &stdout, &stderr); err != nil {
		t.Fatalf("worker: %v\n%s", err, stderr.String())
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if lines[0] == "" {
		t.Fatal("worker emitted nothing")
	}
	var names []string
	for _, line := range lines {
		var rec record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("%s: %v", line, err)
		}
		if !rec.Pass {
			t.Errorf("unit %s failed", rec.Benchmark)
		}
		names = append(names, rec.Benchmark)
	}
	var want []string
	want = append(want, "calibrate")
	for _, u := range units {
		if u.Index%shards == 1 {
			want = append(want, u.Name)
		}
	}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("worker ran %v, want %v", names, want)
	}
}

// TestCoordinatorEndToEnd is the subprocess integration test: a real
// coordinator run sharding a grid across two worker processes, then a
// no-op resume, then a resume after losing a record, then the manifest
// guards. Worker processes are this test binary rerouted via TestMain.
func TestCoordinatorEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses and calibrates each shard")
	}
	dir := t.TempDir()
	specPath := writeSpec(t, dir, tinySpec())
	outDir := filepath.Join(dir, "out")

	sweep := func(extra ...string) (string, error) {
		var stdout, stderr bytes.Buffer
		args := append([]string{"-spec", specPath, "-out", outDir, "-procs", "2"}, extra...)
		err := run(args, strings.NewReader(""), &stdout, &stderr)
		return stdout.String() + stderr.String(), err
	}

	out, err := sweep()
	if err != nil {
		t.Fatalf("first run: %v\n%s", err, out)
	}
	if !strings.Contains(out, "8 units (0 already recorded, 8 to run) across 2 shard(s)") {
		t.Errorf("unexpected first-run summary:\n%s", out)
	}
	counts := shardLineCounts(t, outDir, 2)
	if counts[0] != 5 || counts[1] != 5 { // 4 units + calibrate each
		t.Fatalf("shard record counts = %v, want [5 5]", counts)
	}

	// Resume with everything recorded: no new work, no new records.
	out, err = sweep()
	if err != nil {
		t.Fatalf("resume run: %v\n%s", err, out)
	}
	if !strings.Contains(out, "(8 already recorded, 0 to run)") {
		t.Errorf("resume should find all units recorded:\n%s", out)
	}
	if again := shardLineCounts(t, outDir, 2); !reflect.DeepEqual(again, counts) {
		t.Errorf("no-op resume appended records: %v -> %v", counts, again)
	}

	// Drop the last record of shard 0 and resume: exactly that unit
	// re-runs (calibration is already on disk and is not re-measured).
	path := shardFile(outDir, 0)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	lost := lines[len(lines)-1]
	if err := os.WriteFile(path, []byte(strings.Join(lines[:len(lines)-1], "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = sweep()
	if err != nil {
		t.Fatalf("partial resume: %v\n%s", err, out)
	}
	if !strings.Contains(out, "(7 already recorded, 1 to run)") {
		t.Errorf("partial resume should re-run one unit:\n%s", out)
	}
	var lostRec record
	if err := json.Unmarshal([]byte(lost), &lostRec); err != nil {
		t.Fatal(err)
	}
	raw, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), lostRec.Benchmark) {
		t.Errorf("re-run did not restore a record for %s", lostRec.Benchmark)
	}
	if got := shardLineCounts(t, outDir, 2)[0]; got != 5 {
		t.Errorf("shard 0 records = %d, want 5 after re-run", got)
	}

	// Manifest guards: different shard count, then different spec.
	if out, err = sweep("-procs", "3"); err == nil || !strings.Contains(err.Error(), "shard assignment would change") {
		t.Errorf("procs change not refused: %v\n%s", err, out)
	}
	changed := tinySpec()
	changed.Seeds = []int64{1, 2, 3}
	specPath = writeSpec(t, dir, changed)
	if out, err = sweep(); err == nil || !strings.Contains(err.Error(), "different spec") {
		t.Errorf("spec change not refused: %v\n%s", err, out)
	}
}

// TestCoordinatorMergeGate closes the acceptance loop in miniature: sweep
// across two processes, merge the shards with benchdiff's merge logic
// duplicated here at the file level (the real merge lives in
// cmd/benchdiff; this test only asserts the shard files are well-formed
// JSONL with exactly one calibration record each and no duplicate units).
func TestCoordinatorMergeGate(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	dir := t.TempDir()
	spec := tinySpec()
	spec.Seeds = []int64{7}
	specPath := writeSpec(t, dir, spec)
	outDir := filepath.Join(dir, "out")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-spec", specPath, "-out", outDir, "-procs", "2"},
		strings.NewReader(""), &stdout, &stderr); err != nil {
		t.Fatalf("%v\n%s", err, stderr.String())
	}
	seen := make(map[string]int)
	for shard := 0; shard < 2; shard++ {
		raw, err := os.ReadFile(shardFile(outDir, shard))
		if err != nil {
			t.Fatal(err)
		}
		calibrations := 0
		for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
			var rec record
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				t.Fatalf("shard %d: %v", shard, err)
			}
			if rec.Shard == nil || *rec.Shard != shard {
				t.Errorf("record %s carries shard %v, want %d", rec.Benchmark, rec.Shard, shard)
			}
			if rec.Benchmark == "calibrate" {
				calibrations++
				continue
			}
			seen[rec.Benchmark]++
			if rec.Unit == nil {
				t.Errorf("grid record %s has no unit payload", rec.Benchmark)
			}
		}
		if calibrations != 1 {
			t.Errorf("shard %d has %d calibration records, want 1", shard, calibrations)
		}
	}
	for name, n := range seen {
		if n != 1 {
			t.Errorf("unit %s recorded %d times", name, n)
		}
	}
}

func shardLineCounts(t *testing.T, dir string, shards int) []int {
	t.Helper()
	out := make([]int, shards)
	for s := 0; s < shards; s++ {
		raw, err := os.ReadFile(shardFile(dir, s))
		if err != nil {
			t.Fatal(err)
		}
		out[s] = len(strings.Split(strings.TrimSpace(string(raw)), "\n"))
	}
	return out
}
