package main

import (
	"runtime"
	"time"

	"repro"
	"repro/internal/harness"
)

// record is one JSONL output line of a sweep shard — the bvcbench
// benchRecord schema extended with shard provenance and grid-cell
// metadata. cmd/benchdiff understands the common prefix, so merged shard
// trajectories gate exactly like bvcbench trajectories; the extensions are
// documented in docs/BENCH_FORMAT.md.
type record struct {
	Benchmark   string  `json:"benchmark"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Pass        bool    `json:"pass"`
	Seconds     float64 `json:"seconds"`
	GoMaxProcs  int     `json:"gomaxprocs"`

	// Γ-engine reuse counters (per-op) and derived reuse rate, mirroring
	// cmd/bvcbench's record fields.
	GammaSolves     int64   `json:"gamma_solves,omitempty"`
	GammaCacheHits  int64   `json:"gamma_cache_hits,omitempty"`
	GammaPrefixHits int64   `json:"gamma_prefix_hits,omitempty"`
	GammaRoundHits  int64   `json:"gamma_round_hits,omitempty"`
	GammaReuseRate  float64 `json:"gamma_reuse_rate,omitempty"`

	// Host and Shard are shard provenance: which machine measured the
	// record and which shard of the sweep it belongs to. benchdiff merge
	// preserves them and reconciles cross-host speed differences by the
	// per-shard calibration records.
	Host  string `json:"host,omitempty"`
	Shard *int   `json:"shard,omitempty"`
	// Unit carries grid-cell results (UnitCell records only).
	Unit *unitResult `json:"unit,omitempty"`
}

// unitResult is the grid-cell payload of a sweep record.
type unitResult struct {
	Variant   string  `json:"variant"`
	N         int     `json:"n"`
	D         int     `json:"d"`
	F         int     `json:"f"`
	Adversary string  `json:"adversary"`
	Delay     string  `json:"delay"`
	Seed      int64   `json:"seed"`
	Epsilon   float64 `json:"epsilon"`
	// Budget is "full" (analytic termination, judged by ε-agreement or
	// exact agreement) or "horizon" (γ-aware fixed horizon, judged by
	// contraction + validity); BudgetRounds is the executed horizon.
	Budget       string  `json:"budget"`
	BudgetRounds int     `json:"budget_rounds"`
	Gamma        float64 `json:"gamma,omitempty"`
	Rounds       int     `json:"rounds"`
	Messages     int64   `json:"messages"`
	VerifyMode   string  `json:"verify_mode"`
	SpreadStart  float64 `json:"spread_start,omitempty"`
	SpreadEnd    float64 `json:"spread_end,omitempty"`
	// Reps is the per-cell repetition count (spec "reps", ≥ 2 only when
	// configured); NsPerOpMean is the mean wall time across the reps. With
	// reps, the record's ns_per_op is the MINIMUM across reps — the stable
	// quantity for regression gating — and mean−min spread estimates the
	// cell's timing variance.
	Reps        int   `json:"reps,omitempty"`
	NsPerOpMean int64 `json:"ns_per_op_mean,omitempty"`
}

// runUnit executes one work unit and returns its record. Grid cells run
// cold-cache and report wall time (iterations = 1); with spec reps > 1 the
// cell runs that many times and reports min (gated) plus mean (variance
// estimate). Experiment units — including the e10 per-row cells — run under
// the standard benchmark machinery exactly like bvcbench -json, so their
// ns/op stays comparable with bvcbench-recorded baselines.
func runUnit(u Unit, spec *Spec, host string, shard int) (record, error) {
	rec := record{
		Benchmark:  u.Name,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Host:       host,
		Shard:      &shard,
	}
	switch u.Kind {
	case UnitCell:
		reps := spec.Reps
		if reps < 1 {
			reps = 1
		}
		var (
			out     *harness.SweepOutcome
			minNs   int64
			totalNs int64
			seconds float64
		)
		countersBefore := bvc.EngineGammaCounters()
		for rep := 0; rep < reps; rep++ {
			bvc.ResetEngineCaches()
			start := time.Now()
			o, err := harness.RunSweepCell(u.Cell)
			elapsed := time.Since(start)
			if err != nil {
				return rec, err
			}
			out = o
			ns := elapsed.Nanoseconds()
			totalNs += ns
			seconds += elapsed.Seconds()
			if rep == 0 || ns < minNs {
				minNs = ns
			}
		}
		counters := bvc.EngineGammaCounters().Sub(countersBefore)
		rec.Iterations = 1
		rec.NsPerOp = minNs
		rec.Seconds = seconds
		rec.Pass = out.Verified
		rec.GammaSolves = int64(counters.Solves) / int64(reps)
		rec.GammaCacheHits = int64(counters.CacheHits) / int64(reps)
		rec.GammaPrefixHits = int64(counters.PrefixHits) / int64(reps)
		rec.GammaRoundHits = int64(counters.RoundHits) / int64(reps)
		rec.GammaReuseRate = counters.ReuseRate()
		rec.Unit = &unitResult{
			Variant: out.Cell.Variant, N: out.Cell.N, D: out.Cell.D, F: out.Cell.F,
			Adversary: out.Cell.Adversary, Delay: out.Cell.Delay,
			Seed: out.Cell.Seed, Epsilon: out.Cell.Epsilon,
			Budget: out.Budget.Mode(), BudgetRounds: out.Budget.Rounds, Gamma: out.Budget.Gamma,
			Rounds: out.Rounds, Messages: out.Messages, VerifyMode: out.VerifyMode,
			SpreadStart: out.SpreadStart, SpreadEnd: out.SpreadEnd,
		}
		if reps > 1 {
			rec.Unit.Reps = reps
			rec.Unit.NsPerOpMean = totalNs / int64(reps)
		}
		return rec, nil

	case UnitExperiment:
		run := harness.Runners(spec.ExperimentSeed, spec.Trials)[u.Experiment]
		if u.SerialNodes {
			inner := run
			run = func() (*harness.Table, error) { return harness.RunSerialNodes(inner) }
		}
		return measureRecord(rec, run)

	case UnitE10Row:
		return measureRecord(rec, harness.E10RowRunner(u.Cell))
	}
	rec.Pass = false
	return rec, nil
}

// measureRecord fills rec from one MeasureTable run of the given runner.
func measureRecord(rec record, run func() (*harness.Table, error)) (record, error) {
	tbl, br, counters, err := harness.MeasureTable(run)
	if err != nil {
		return rec, err
	}
	rec.Iterations = br.N
	rec.NsPerOp = br.NsPerOp()
	rec.AllocsPerOp = br.AllocsPerOp()
	rec.BytesPerOp = br.AllocedBytesPerOp()
	rec.Seconds = br.T.Seconds()
	rec.Pass = tbl != nil && tbl.Pass
	// MeasureTable's counters are already per-op.
	rec.GammaSolves = int64(counters.Solves)
	rec.GammaCacheHits = int64(counters.CacheHits)
	rec.GammaPrefixHits = int64(counters.PrefixHits)
	rec.GammaRoundHits = int64(counters.RoundHits)
	rec.GammaReuseRate = counters.ReuseRate()
	return rec, nil
}

// calibrateRecord measures the shared calibration kernel for this shard.
func calibrateRecord(host string, shard int) (record, error) {
	tbl, br, _, err := harness.MeasureTable(harness.Calibrate)
	if err != nil {
		return record{}, err
	}
	s := shard
	return record{
		Benchmark:   "calibrate",
		Iterations:  br.N,
		NsPerOp:     br.NsPerOp(),
		AllocsPerOp: br.AllocsPerOp(),
		BytesPerOp:  br.AllocedBytesPerOp(),
		Pass:        tbl.Pass,
		Seconds:     br.T.Seconds(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Host:        host,
		Shard:       &s,
	}, nil
}
