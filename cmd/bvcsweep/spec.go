package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"

	"repro"
	"repro/internal/harness"
)

// Spec is the declarative description of a sweep: ranges over the grid
// axes, plus an optional list of bvcbench experiments to measure alongside
// the grid (so a merged shard trajectory contains every record a committed
// BENCH_baseline.json expects). See docs/BENCH_FORMAT.md and the examples
// under cmd/bvcsweep/testdata/.
type Spec struct {
	// Name labels the sweep in the manifest.
	Name string `json:"name"`
	// Variants are harness.SweepVariants entries ("exact", "approx",
	// "rsync", "rasync"). Empty selects all four.
	Variants []string `json:"variants"`
	// Dims and Faults are the d and f axes. Empty defaults to [2] and [1].
	Dims   []int `json:"dims"`
	Faults []int `json:"faults"`
	// Procs is the n axis. Empty selects the paper's tight bound for each
	// (variant, d, f) cell. Explicit values keep only cells with
	// n ≥ MinProcesses (and, when MaxSlack > 0, n − MinProcesses ≤ MaxSlack
	// — large slack makes low-(d, f) cells trivially over-provisioned).
	Procs []int `json:"procs"`
	// MaxSlack bounds n − MinProcesses for explicit Procs; 0 means
	// unlimited.
	MaxSlack int `json:"max_slack"`
	// Adversaries are harness.SweepAdversaries entries. Empty defaults to
	// ["none"].
	Adversaries []string `json:"adversaries"`
	// Delays are harness.SweepDelays entries, applied to asynchronous
	// variants only (synchronous cells canonicalize to "none"). Empty
	// defaults to ["constant"].
	Delays []string `json:"delays"`
	// Seeds drives grid-cell randomness. Empty defaults to [1].
	Seeds []int64 `json:"seeds"`
	// Epsilon is the ε of ε-agreement for grid cells (0 → 0.05).
	Epsilon float64 `json:"epsilon"`
	// Experiments lists bvcbench experiments to measure as sweep units
	// ("e1" … "e10", "f1", "f2", or the single entry "all"). "e10" also
	// expands the serial-stepping companion record "e10/nodeworkers=1",
	// mirroring bvcbench -json, so merged trajectories carry every record
	// a bvcbench-recorded baseline holds.
	Experiments []string `json:"experiments"`
	// Reps is the per-cell repetition count for grid cells (default 1).
	// With Reps ≥ 2 every cell runs that many times, cold-cache each time;
	// the record's ns_per_op is the minimum across reps (the stable
	// quantity to gate on) and the unit payload carries reps and
	// ns_per_op_mean as a variance estimate. Experiment units are
	// unaffected (testing.Benchmark already iterates them).
	Reps int `json:"reps,omitempty"`
	// ExcludeFragile drops grid cells in the formerly fragile Γ regime
	// (harness.SweepCell.FragileGamma: restricted cells with f ≥ 2 at or —
	// for rasync — above the Lemma-1 threshold). These cells were SKIPPED
	// by default while the dense-tableau LP could wedge on them; the
	// revised simplex core retired that failure mode, so they now run by
	// default and this field is only an escape hatch (e.g. for bisecting a
	// solver regression against an old checkout).
	ExcludeFragile bool `json:"exclude_fragile"`
	// ExperimentSeed is the master seed of the experiment units (0 → 1,
	// bvcbench's default; it must match the seed the baseline trajectory
	// was recorded with for ns/op comparisons to measure the same work).
	ExperimentSeed int64 `json:"experiment_seed"`
	// Trials is the E3 trial count (0 → 20, bvcbench's default).
	Trials int `json:"trials"`
}

// UnitKind distinguishes grid cells from experiment units.
type UnitKind string

// Unit kinds.
const (
	UnitCell       UnitKind = "cell"
	UnitExperiment UnitKind = "experiment"
	// UnitE10Row is one committed E10 restricted/async row (an
	// harness.E10RowCells entry) measured as an individual benchmark
	// record, mirroring bvcbench -json's "e10/<variant>-n<n>" targets.
	UnitE10Row UnitKind = "e10row"
)

// Unit is one schedulable work item of a sweep. Units are produced in a
// deterministic order by Expand; a unit's shard is Index mod the shard
// count, so every process (and every machine) computes the identical
// assignment from the spec alone.
type Unit struct {
	Index int      `json:"index"`
	Name  string   `json:"name"`
	Kind  UnitKind `json:"kind"`
	// Cell is set for UnitCell units.
	Cell harness.SweepCell `json:"cell,omitempty"`
	// Experiment is set for UnitExperiment units ("e1" … "f2");
	// SerialNodes marks the "e10/nodeworkers=1" companion measurement.
	Experiment  string `json:"experiment,omitempty"`
	SerialNodes bool   `json:"serial_nodes,omitempty"`
}

// normalize fills Spec defaults in place and validates enum fields.
func (s *Spec) normalize() error {
	if len(s.Variants) == 0 {
		s.Variants = append([]string(nil), harness.SweepVariants...)
	}
	if len(s.Dims) == 0 {
		s.Dims = []int{2}
	}
	if len(s.Faults) == 0 {
		s.Faults = []int{1}
	}
	if len(s.Adversaries) == 0 {
		s.Adversaries = []string{"none"}
	}
	if len(s.Delays) == 0 {
		s.Delays = []string{"constant"}
	}
	if len(s.Seeds) == 0 {
		s.Seeds = []int64{1}
	}
	if s.Epsilon == 0 {
		s.Epsilon = 0.05
	}
	if s.ExperimentSeed == 0 {
		s.ExperimentSeed = 1
	}
	if s.Trials == 0 {
		s.Trials = 20
	}
	if len(s.Experiments) == 1 && s.Experiments[0] == "all" {
		s.Experiments = append([]string(nil), harness.ExperimentOrder...)
	}
	known := harness.Runners(0, 1)
	for _, e := range s.Experiments {
		if _, ok := known[e]; !ok {
			return fmt.Errorf("spec: unknown experiment %q", e)
		}
	}
	member := func(kind, v string, allowed []string) error {
		for _, a := range allowed {
			if v == a {
				return nil
			}
		}
		return fmt.Errorf("spec: unknown %s %q (want one of %v)", kind, v, allowed)
	}
	for _, v := range s.Variants {
		if err := member("variant", v, harness.SweepVariants); err != nil {
			return err
		}
	}
	for _, a := range s.Adversaries {
		if err := member("adversary", a, harness.SweepAdversaries); err != nil {
			return err
		}
	}
	for _, d := range s.Delays {
		if err := member("delay", d, harness.SweepDelays); err != nil {
			return err
		}
	}
	return nil
}

// Expand produces the deterministic unit list of the spec: experiment
// units first (in harness.ExperimentOrder), then grid cells in
// variants × dims × faults × procs × adversaries × delays × seeds order.
// Cells below the paper's resilience bound are skipped; cells that
// canonicalize identically (synchronous variants ignore the delay axis,
// explicit Procs may repeat the tight bound) are deduplicated, first
// occurrence wins. The expansion is a pure function of the spec — workers
// on other machines recompute it instead of receiving a work list.
func (s *Spec) Expand() ([]Unit, error) {
	if err := s.normalize(); err != nil {
		return nil, err
	}
	var units []Unit
	seen := make(map[string]bool)
	add := func(u Unit) {
		if seen[u.Name] {
			return
		}
		seen[u.Name] = true
		u.Index = len(units)
		units = append(units, u)
	}
	for _, name := range harness.ExperimentOrder {
		for _, e := range s.Experiments {
			if e != name {
				continue
			}
			add(Unit{Name: name, Kind: UnitExperiment, Experiment: name})
			if name == "e10" {
				add(Unit{Name: "e10/nodeworkers=1", Kind: UnitExperiment, Experiment: "e10", SerialNodes: true})
				for _, cell := range harness.E10RowCells {
					norm, err := cell.Normalize()
					if err != nil {
						return nil, fmt.Errorf("spec: e10 row: %w", err)
					}
					add(Unit{Name: harness.E10RowName(norm), Kind: UnitE10Row, Cell: norm})
				}
			}
		}
	}
	procs := s.Procs
	tight := len(procs) == 0
	if tight {
		procs = []int{0} // 0 → tight bound, resolved by Normalize
	}
	for _, variant := range s.Variants {
		for _, d := range s.Dims {
			for _, f := range s.Faults {
				for _, n := range procs {
					for _, adv := range s.Adversaries {
						for _, delay := range s.Delays {
							for _, seed := range s.Seeds {
								if !tight {
									// An explicit n below the bound (or past
									// the slack window) for this
									// (variant, d, f) is not an error — the
									// grid simply has no such cell.
									min := bvc.MinProcesses(variantOf(variant), d, f)
									if n < min || (s.MaxSlack > 0 && n-min > s.MaxSlack) {
										continue
									}
								}
								cell := harness.SweepCell{
									Variant: variant, N: n, D: d, F: f,
									Adversary: adv, Delay: delay,
									Seed: seed, Epsilon: s.Epsilon,
								}
								norm, err := cell.Normalize()
								if err != nil {
									return nil, fmt.Errorf("spec: %w", err)
								}
								if norm.FragileGamma() && s.ExcludeFragile {
									continue
								}
								add(Unit{Name: norm.Name(), Kind: UnitCell, Cell: norm})
							}
						}
					}
				}
			}
		}
	}
	if len(units) == 0 {
		return nil, fmt.Errorf("spec: expands to zero units")
	}
	return units, nil
}

// variantOf maps a SweepCell variant name to the public Variant (names are
// pre-validated by Normalize).
func variantOf(name string) bvc.Variant {
	switch name {
	case "exact":
		return bvc.ExactSync
	case "approx":
		return bvc.ApproxAsync
	case "rsync":
		return bvc.RestrictedSync
	default:
		return bvc.RestrictedAsync
	}
}

// readSpec loads and normalizes a spec file.
func readSpec(path string) (*Spec, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Spec
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := s.normalize(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

// Fingerprint is the canonical identity of a normalized spec: the SHA-256
// of its canonical JSON encoding. The manifest records it; resuming into
// an output directory whose manifest carries a different fingerprint is
// refused (the unit list, and with it the shard assignment, would change
// under the records already on disk).
func (s *Spec) Fingerprint() string {
	clone := *s
	_ = clone.normalize()
	raw, _ := json.Marshal(clone)
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}
