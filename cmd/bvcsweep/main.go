// Command bvcsweep expands a declarative sweep spec — ranges over
// (variant, n, d, f, adversary, delay, seed), plus optional bvcbench
// experiment units — into work units and shards them across worker
// processes, locally and/or over SSH. Each shard streams bvcbench-style
// JSON records (one line per unit, led by a per-shard hardware-calibration
// record) into its own shard file; `benchdiff merge` joins shard files
// into a single BENCH trajectory that gates against a committed baseline.
//
// Usage:
//
//	bvcsweep -spec sweep.json -out sweepdir -procs 4
//	bvcsweep -spec sweep.json -out sweepdir -procs 4        # again: resumes
//	bvcsweep -spec sweep.json -out sweepdir -procs 4 -hosts h1,h2 \
//	    -remote-cmd /usr/local/bin/bvcsweep                 # SSH fan-out
//	benchdiff merge -out merged.json sweepdir/shard-*.jsonl
//	benchdiff -baseline BENCH_baseline.json -candidate merged.json
//
// Sharding is deterministic: the unit list is a pure function of the spec
// (workers re-expand it rather than receiving a work list), and unit i
// belongs to shard i mod the shard count. A manifest in the output
// directory records the spec fingerprint; re-running with the same spec
// resumes — units whose records already sit in shard files are skipped,
// records with pass=false are re-run. Changing the spec against a
// half-filled output directory is refused, since it would silently change
// the unit↔shard assignment under the existing records.
//
// In SSH mode each worker process runs `ssh <host> <remote-cmd> -worker`
// with the work order on stdin and records streamed back on stdout, so the
// remote end needs only the binary — no spec file, no shared filesystem.
// The grid scales past what one machine sustains: γ-aware round budgets
// (internal/harness.GammaBudget) keep restricted/async cells at n ≥ 15
// from the combinatorial blowup of their analytic termination bounds.
//
// The spec schema is documented on the Spec type and docs/BENCH_FORMAT.md;
// small example specs live in cmd/bvcsweep/testdata/.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/harness"
)

func main() {
	os.Exit(realMain(os.Args[1:]))
}

func realMain(args []string) int {
	if err := run(args, os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "bvcsweep:", err)
		return 1
	}
	return 0
}

// engineOptions mirrors bvcbench's engine flags; the coordinator forwards
// them to every worker.
type engineOptions struct {
	workers     int
	nodeWorkers int
	gammaCache  bool
}

// workOrder is the stdin payload of a worker process: everything needed to
// recompute the unit list, pick this shard's units, and skip completed
// ones. Self-contained so SSH workers need no files on the remote side.
type workOrder struct {
	Spec   Spec     `json:"spec"`
	Shard  int      `json:"shard"`
	Shards int      `json:"shards"`
	Skip   []string `json:"skip,omitempty"`

	Workers     int  `json:"workers"`
	NodeWorkers int  `json:"nodeworkers"`
	GammaCache  bool `json:"gammacache"`
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("bvcsweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		specPath  = fs.String("spec", "", "sweep spec file (JSON; see docs/BENCH_FORMAT.md)")
		outDir    = fs.String("out", "sweepout", "output directory for shard files and the manifest")
		procs     = fs.Int("procs", 2, "worker process count = shard count")
		hosts     = fs.String("hosts", "", "comma-separated SSH hosts; workers are distributed round-robin (empty = all local)")
		remoteCmd = fs.String("remote-cmd", "bvcsweep", "bvcsweep invocation on remote hosts (whitespace-split, no quoting)")
		sshCmd    = fs.String("ssh", "ssh", "ssh-like transport command for -hosts mode")
		worker    = fs.Bool("worker", false, "run as a shard worker: read a work order from stdin, stream records to stdout")
		expand    = fs.Bool("expand", false, "print the expanded unit list (name and shard) and exit without running anything")

		engineWorkers = fs.Int("workers", 0, "Γ-point engine worker bound per worker process: 0 = GOMAXPROCS, 1 = serial")
		nodeWorkers   = fs.Int("nodeworkers", 0, "simulated-node stepping worker bound: 0 = GOMAXPROCS, 1 = serial")
		gammaCache    = fs.Bool("gammacache", true, "memoize Γ-points across processes and rounds")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *worker {
		return runWorker(stdin, stdout, stderr)
	}
	if *specPath == "" {
		return fmt.Errorf("-spec is required (see cmd/bvcsweep/testdata for examples)")
	}
	spec, err := readSpec(*specPath)
	if err != nil {
		return err
	}
	units, err := spec.Expand()
	if err != nil {
		return err
	}
	if *procs < 1 {
		return fmt.Errorf("-procs %d: need at least one worker", *procs)
	}
	if *expand {
		for _, u := range units {
			fmt.Fprintf(stdout, "%4d  shard %d  %s\n", u.Index, u.Index%*procs, u.Name)
		}
		return nil
	}
	eo := engineOptions{workers: *engineWorkers, nodeWorkers: *nodeWorkers, gammaCache: *gammaCache}
	c := coordinator{
		spec: spec, units: units, outDir: *outDir, shards: *procs,
		hosts: splitHosts(*hosts), remoteCmd: *remoteCmd, sshCmd: *sshCmd,
		eo: eo, stderr: stderr,
	}
	return c.run(stdout)
}

func splitHosts(s string) []string {
	var out []string
	for _, h := range strings.Split(s, ",") {
		if h = strings.TrimSpace(h); h != "" {
			out = append(out, h)
		}
	}
	return out
}

// coordinator owns one sweep invocation: manifest handling, resume
// bookkeeping, worker process lifecycle, and shard-file writing.
type coordinator struct {
	spec      *Spec
	units     []Unit
	outDir    string
	shards    int
	hosts     []string
	remoteCmd string
	sshCmd    string
	eo        engineOptions
	stderr    io.Writer
}

func shardFile(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d.jsonl", shard))
}

func (c *coordinator) run(stdout io.Writer) error {
	if err := os.MkdirAll(c.outDir, 0o755); err != nil {
		return err
	}
	if err := c.checkManifest(); err != nil {
		return err
	}

	// Resume bookkeeping: a unit is done when any shard file already holds
	// a passing record for it. Failed (pass=false) records are re-run —
	// re-execution appends a fresh record and "last wins" at merge time.
	done, err := completedUnits(c.outDir, c.shards)
	if err != nil {
		return err
	}
	var pending int
	skip := make(map[int][]string)          // shard → completed unit names
	pendingByShard := make([]int, c.shards) // shard → units still to run
	for shard := 0; shard < c.shards; shard++ {
		if done[calibrateKey(shard)] {
			// The worker-side skip entry for an already-measured per-shard
			// calibration record is the plain benchmark name.
			skip[shard] = append(skip[shard], "calibrate")
		}
	}
	for _, u := range c.units {
		s := u.Index % c.shards
		if done[u.Name] {
			skip[s] = append(skip[s], u.Name)
		} else {
			pending++
			pendingByShard[s]++
		}
	}
	fmt.Fprintf(c.stderr, "bvcsweep: %d units (%d already recorded, %d to run) across %d shard(s)\n",
		len(c.units), len(c.units)-pending, pending, c.shards)

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		failed   []string
	)
	for shard := 0; shard < c.shards; shard++ {
		if pendingByShard[shard] == 0 {
			// A fully-recorded shard needs no worker — on a resume this
			// avoids a useless process spawn (or SSH round trip).
			continue
		}
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			fails, err := c.runShard(shard, skip[shard])
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("shard %d: %w", shard, err)
			}
			failed = append(failed, fails...)
		}(shard)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if len(failed) > 0 {
		return fmt.Errorf("%d unit(s) failed verification: %s", len(failed), strings.Join(failed, ", "))
	}
	fmt.Fprintf(stdout, "bvcsweep: complete; merge with\n  benchdiff merge -out merged.json %s\n",
		filepath.Join(c.outDir, "shard-*.jsonl"))
	return nil
}

// runShard spawns one worker process (local or SSH), feeds it its work
// order, and appends every record line it emits to the shard file. It
// returns the names of units whose records came back pass=false.
func (c *coordinator) runShard(shard int, skip []string) ([]string, error) {
	order := workOrder{
		Spec: *c.spec, Shard: shard, Shards: c.shards, Skip: skip,
		Workers: c.eo.workers, NodeWorkers: c.eo.nodeWorkers, GammaCache: c.eo.gammaCache,
	}
	payload, err := json.Marshal(order)
	if err != nil {
		return nil, err
	}

	cmd, err := c.workerCommand(shard)
	if err != nil {
		return nil, err
	}
	cmd.Stdin = bytes.NewReader(payload)
	cmd.Stderr = prefixWriter(c.stderr, fmt.Sprintf("[shard %d] ", shard))
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}

	f, err := os.OpenFile(shardFile(c.outDir, shard), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		return nil, err
	}
	defer f.Close()

	var failed []string
	sc := bufio.NewScanner(out)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
			return nil, fmt.Errorf("malformed record from worker: %v (%q)", err, line)
		}
		// Records are durable the moment the line lands: each is written
		// and flushed individually so an interrupted sweep resumes from
		// the last completed unit.
		if _, err := f.Write(append([]byte(line), '\n')); err != nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
			return nil, err
		}
		if !rec.Pass {
			failed = append(failed, rec.Benchmark)
		}
		fmt.Fprintf(c.stderr, "[shard %d] %s: %.3fs pass=%v\n", shard, rec.Benchmark, rec.Seconds, rec.Pass)
	}
	if err := sc.Err(); err != nil {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		return nil, err
	}
	if err := cmd.Wait(); err != nil {
		return failed, fmt.Errorf("worker: %w", err)
	}
	return failed, nil
}

// workerCommand builds the worker process invocation: a re-exec of this
// binary for local shards, or `ssh host remote-cmd -worker` when the
// shard's round-robin host is remote.
func (c *coordinator) workerCommand(shard int) (*exec.Cmd, error) {
	if len(c.hosts) > 0 {
		host := c.hosts[shard%len(c.hosts)]
		parts := strings.Fields(c.remoteCmd)
		if len(parts) == 0 {
			return nil, fmt.Errorf("-remote-cmd is empty")
		}
		sshParts := strings.Fields(c.sshCmd)
		if len(sshParts) == 0 {
			return nil, fmt.Errorf("-ssh is empty")
		}
		argv := append(sshParts[1:], host)
		argv = append(argv, parts...)
		argv = append(argv, "-worker")
		return exec.Command(sshParts[0], argv...), nil
	}
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(exe, "-worker")
	// BVCSWEEP_WORKER_PROC reroutes the test binary into realMain when the
	// integration tests act as the worker executable; the production
	// binary ignores it.
	cmd.Env = append(os.Environ(), "BVCSWEEP_WORKER_PROC=1")
	return cmd, nil
}

// runWorker is the -worker entry point: read the work order, re-expand the
// spec, execute this shard's pending units in index order, and stream one
// record per line. The calibration record leads unless every assigned unit
// is already recorded (a resumed shard must not distort its existing
// calibration context).
func runWorker(stdin io.Reader, stdout, stderr io.Writer) error {
	raw, err := io.ReadAll(stdin)
	if err != nil {
		return err
	}
	var order workOrder
	if err := json.Unmarshal(raw, &order); err != nil {
		return fmt.Errorf("work order: %w", err)
	}
	if order.Shards < 1 || order.Shard < 0 || order.Shard >= order.Shards {
		return fmt.Errorf("work order: shard %d of %d invalid", order.Shard, order.Shards)
	}
	units, err := order.Spec.Expand()
	if err != nil {
		return err
	}
	skip := make(map[string]bool, len(order.Skip))
	for _, name := range order.Skip {
		skip[name] = true
	}
	var mine []Unit
	for _, u := range units {
		if u.Index%order.Shards == order.Shard && !skip[u.Name] {
			mine = append(mine, u)
		}
	}
	harness.SetEngineOptions(order.Workers, !order.GammaCache, order.NodeWorkers)
	host, _ := os.Hostname()

	enc := json.NewEncoder(stdout)
	if len(mine) > 0 && !skip["calibrate"] {
		cal, err := calibrateRecord(host, order.Shard)
		if err != nil {
			return err
		}
		if err := enc.Encode(cal); err != nil {
			return err
		}
	}
	for _, u := range mine {
		rec, err := runUnit(u, &order.Spec, host, order.Shard)
		if err != nil {
			// A unit that cannot execute at all (as opposed to failing
			// verification) is recorded pass=false with the error on
			// stderr, so one broken cell doesn't strand the rest of the
			// shard — and resume retries it.
			fmt.Fprintf(stderr, "unit %s: %v\n", u.Name, err)
			rec.Pass = false
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// prefixWriter returns a writer that prefixes each line, keeping worker
// stderr streams readable when several shards interleave.
func prefixWriter(w io.Writer, prefix string) io.Writer {
	return &lineWriter{w: w, prefix: prefix}
}

type lineWriter struct {
	w      io.Writer
	prefix string
	buf    []byte
}

func (lw *lineWriter) Write(p []byte) (int, error) {
	lw.buf = append(lw.buf, p...)
	for {
		i := bytes.IndexByte(lw.buf, '\n')
		if i < 0 {
			return len(p), nil
		}
		line := lw.buf[:i+1]
		if _, err := fmt.Fprintf(lw.w, "%s%s", lw.prefix, line); err != nil {
			return len(p), err
		}
		lw.buf = lw.buf[i+1:]
	}
}
