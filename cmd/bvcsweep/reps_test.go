package main

import (
	"testing"

	"repro/internal/harness"
)

// TestRunUnitReps: with spec reps ≥ 2, a grid cell runs that many times and
// its record carries ns_per_op = min across reps plus the (reps,
// ns_per_op_mean) variance estimate; reps = 0/1 leaves the record shape
// unchanged (fields omitted).
func TestRunUnitReps(t *testing.T) {
	cell, err := harness.SweepCell{Variant: "exact", D: 2, F: 1, Adversary: "none", Seed: 1}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	unit := Unit{Name: cell.Name(), Kind: UnitCell, Cell: cell}

	rec, err := runUnit(unit, &Spec{Reps: 3}, "host", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Pass {
		t.Fatal("cell did not verify")
	}
	if rec.Unit == nil || rec.Unit.Reps != 3 {
		t.Fatalf("unit payload reps = %+v, want 3", rec.Unit)
	}
	if rec.Unit.NsPerOpMean < rec.NsPerOp {
		t.Fatalf("mean %d below min %d", rec.Unit.NsPerOpMean, rec.NsPerOp)
	}
	if rec.NsPerOp <= 0 {
		t.Fatalf("ns_per_op = %d", rec.NsPerOp)
	}

	single, err := runUnit(unit, &Spec{}, "host", 0)
	if err != nil {
		t.Fatal(err)
	}
	if single.Unit.Reps != 0 || single.Unit.NsPerOpMean != 0 {
		t.Fatalf("reps fields must be omitted for single runs, got %+v", single.Unit)
	}
}

// TestRunUnitE10Row: the e10 per-row unit measures a committed E10 cell
// under the benchmark protocol and reports Γ reuse counters.
func TestRunUnitE10Row(t *testing.T) {
	if testing.Short() {
		t.Skip("n = 15 row measurement in -short mode")
	}
	cell, err := harness.E10RowCells[0].Normalize()
	if err != nil {
		t.Fatal(err)
	}
	unit := Unit{Name: harness.E10RowName(cell), Kind: UnitE10Row, Cell: cell}
	rec, err := runUnit(unit, &Spec{}, "host", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Pass {
		t.Fatal("E10 row did not verify")
	}
	if rec.Benchmark != "e10/rsync-n15" {
		t.Fatalf("benchmark = %q", rec.Benchmark)
	}
	if rec.GammaCacheHits+rec.GammaPrefixHits+rec.GammaRoundHits == 0 {
		t.Fatal("E10 row shows no Γ reuse — the incremental path is cold")
	}
}
