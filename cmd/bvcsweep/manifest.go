package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// manifest pins a sweep output directory to one spec and shard layout. The
// unit list (and with it the unit↔shard assignment) is a pure function of
// (spec, shard count); resuming with a different spec or -procs would
// reassign units under the records already on disk, so both are part of
// the identity and a mismatch is refused.
type manifest struct {
	Name        string `json:"name"`
	Fingerprint string `json:"spec_fingerprint"`
	Shards      int    `json:"shards"`
	Units       int    `json:"units"`
	Hosts       string `json:"hosts,omitempty"`
}

const manifestName = "manifest.json"

// checkManifest writes the manifest on first use of an output directory
// and verifies it on every subsequent (resuming) run.
func (c *coordinator) checkManifest() error {
	path := filepath.Join(c.outDir, manifestName)
	want := manifest{
		Name:        c.spec.Name,
		Fingerprint: c.spec.Fingerprint(),
		Shards:      c.shards,
		Units:       len(c.units),
		Hosts:       strings.Join(c.hosts, ","),
	}
	raw, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		out, err := json.MarshalIndent(want, "", "  ")
		if err != nil {
			return err
		}
		return os.WriteFile(path, append(out, '\n'), 0o644)
	}
	if err != nil {
		return err
	}
	var have manifest
	if err := json.Unmarshal(raw, &have); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if have.Fingerprint != want.Fingerprint {
		return fmt.Errorf("%s was recorded for a different spec (fingerprint %.12s, this spec %.12s); use a fresh -out directory",
			path, have.Fingerprint, want.Fingerprint)
	}
	if have.Shards != want.Shards {
		return fmt.Errorf("%s was recorded with -procs %d, now %d; shard assignment would change — use a fresh -out directory or the original -procs",
			path, have.Shards, want.Shards)
	}
	// Hosts may legitimately change between resume runs (a machine came or
	// went); assignment is by shard index, not by host, so only note it.
	if have.Hosts != want.Hosts {
		fmt.Fprintf(c.stderr, "bvcsweep: note: resuming with hosts %q (manifest had %q)\n", want.Hosts, have.Hosts)
	}
	return nil
}

// completedUnits scans the shard files of an output directory and reports
// which units already carry a passing record (globally — a unit's record
// only ever lands in its own shard's file) and which shards have already
// measured their calibration record.
func completedUnits(dir string, shards int) (map[string]bool, error) {
	done := make(map[string]bool)
	for shard := 0; shard < shards; shard++ {
		f, err := os.Open(shardFile(dir, shard))
		if errors.Is(err, fs.ErrNotExist) {
			continue
		}
		if err != nil {
			return nil, err
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
		line := 0
		for sc.Scan() {
			line++
			text := strings.TrimSpace(sc.Text())
			if text == "" {
				continue
			}
			var rec record
			if err := json.Unmarshal([]byte(text), &rec); err != nil {
				f.Close()
				return nil, fmt.Errorf("%s:%d: %w (truncate the bad line to resume)", shardFile(dir, shard), line, err)
			}
			if rec.Pass {
				if rec.Benchmark == "calibrate" {
					done[calibrateKey(shard)] = true
				} else {
					done[rec.Benchmark] = true
				}
			}
		}
		if err := sc.Err(); err != nil {
			f.Close()
			return nil, err
		}
		f.Close()
	}
	return done, nil
}

// calibrateKey namespaces the per-shard calibration record in the
// completed-unit set (each shard calibrates independently).
func calibrateKey(shard int) string {
	return fmt.Sprintf("calibrate@shard%d", shard)
}
