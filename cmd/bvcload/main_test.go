package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestLoadJSON runs a small live load and checks the emitted trajectory
// fragment: leading calibrate record, live/* records, all passing, with
// the service counters attached.
func TestLoadJSON(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-rate", "250", "-instances", "24", "-json", "-minrate", "1"}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	var names []string
	sc := bufio.NewScanner(&out)
	for sc.Scan() {
		var rec loadRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad record %q: %v", sc.Text(), err)
		}
		if !rec.Pass {
			t.Errorf("record %s has pass=false", rec.Benchmark)
		}
		if rec.NsPerOp <= 0 {
			t.Errorf("record %s has ns_per_op=%d", rec.Benchmark, rec.NsPerOp)
		}
		if rec.Benchmark == "live/instance" {
			if rec.Instances != 24 || rec.Processes != 5 {
				t.Errorf("live/instance: instances=%d processes=%d", rec.Instances, rec.Processes)
			}
			if rec.FramesOut == 0 || rec.BytesOut == 0 {
				t.Errorf("live/instance: empty transport counters: %+v", rec)
			}
		}
		names = append(names, rec.Benchmark)
	}
	want := []string{"calibrate", "live/instance", "live/latency_p50", "live/latency_p99"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("records %v, want %v", names, want)
	}
}

// TestLoadSummary checks the human-readable mode and the shed policy path.
func TestLoadSummary(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-rate", "250", "-instances", "12", "-policy", "shed"}, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{"instances  12", "latency", "errors     0 instance"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("summary missing %q:\n%s", want, out.String())
		}
	}
}

// TestLoadChurn drives load across a live membership replacement: one
// process is retired mid-run and its successor admitted at epoch+1, with
// the validity gate still required to hold on every decision.
func TestLoadChurn(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-rate", "100", "-duration", "800ms", "-churn", "1", "-json"}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	sc := bufio.NewScanner(&out)
	var live *loadRecord
	for sc.Scan() {
		var rec loadRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad record %q: %v", sc.Text(), err)
		}
		if !rec.Pass {
			t.Errorf("record %s has pass=false", rec.Benchmark)
		}
		if rec.Benchmark == "live/instance" {
			r := rec
			live = &r
		}
	}
	if live == nil {
		t.Fatal("no live/instance record")
	}
	if live.Epoch < 1 {
		t.Errorf("epoch = %d after one replacement, want ≥ 1", live.Epoch)
	}
	if live.Reconfigures < 4 {
		t.Errorf("reconfigures = %d, want ≥ 4 (every survivor adopts)", live.Reconfigures)
	}
}

// TestLoadChurnScenario replays the committed membership-churn scenario
// (the CI chaos-smoke case) at a reduced rate: crash, replacement at
// epoch+1 under asymmetric faults, heal — zero violations required.
func TestLoadChurnScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("replays a 2.6s fault timeline")
	}
	var out bytes.Buffer
	err := run([]string{"-chaos", "testdata/membership-churn.json", "-rate", "30", "-duration", "2600ms"}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{"errors     0 instance", "at epoch 1"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("summary missing %q:\n%s", want, out.String())
		}
	}
}

// TestLoadBadFlags covers flag validation.
func TestLoadBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-policy", "bogus", "-instances", "1"}, &out); err == nil {
		t.Error("bogus policy accepted")
	}
	if err := run([]string{"-n", "4", "-instances", "1"}, &out); err == nil {
		t.Error("n=4 < (d+2)f+1=5 accepted")
	}
}
