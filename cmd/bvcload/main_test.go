package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestLoadJSON runs a small live load and checks the emitted trajectory
// fragment: leading calibrate record, live/* records, all passing, with
// the service counters attached.
func TestLoadJSON(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-rate", "250", "-instances", "24", "-json", "-minrate", "1"}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	var names []string
	sc := bufio.NewScanner(&out)
	for sc.Scan() {
		var rec loadRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad record %q: %v", sc.Text(), err)
		}
		if !rec.Pass {
			t.Errorf("record %s has pass=false", rec.Benchmark)
		}
		if rec.NsPerOp <= 0 {
			t.Errorf("record %s has ns_per_op=%d", rec.Benchmark, rec.NsPerOp)
		}
		if rec.Benchmark == "live/instance" {
			if rec.Instances != 24 || rec.Processes != 5 {
				t.Errorf("live/instance: instances=%d processes=%d", rec.Instances, rec.Processes)
			}
			if rec.FramesOut == 0 || rec.BytesOut == 0 {
				t.Errorf("live/instance: empty transport counters: %+v", rec)
			}
		}
		names = append(names, rec.Benchmark)
	}
	want := []string{"calibrate", "live/instance", "live/latency_p50", "live/latency_p99"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("records %v, want %v", names, want)
	}
}

// TestLoadSummary checks the human-readable mode and the shed policy path.
func TestLoadSummary(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-rate", "250", "-instances", "12", "-policy", "shed"}, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{"instances  12", "latency", "errors     0 instance"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("summary missing %q:\n%s", want, out.String())
		}
	}
}

// TestLoadBadFlags covers flag validation.
func TestLoadBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-policy", "bogus", "-instances", "1"}, &out); err == nil {
		t.Error("bogus policy accepted")
	}
	if err := run([]string{"-n", "4", "-instances", "1"}, &out); err == nil {
		t.Error("n=4 < (d+2)f+1=5 accepted")
	}
}
