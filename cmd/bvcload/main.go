// Command bvcload load-tests the multi-tenant live consensus service: it
// builds an n-process service mesh over loopback TCP, drives a target
// sustained rate of concurrent consensus instances through it open-loop,
// and reports decision latency percentiles, achieved throughput, and the
// service's transport counters.
//
// Usage:
//
//	bvcload                          # 5-process mesh, 250 inst/s for 2s
//	bvcload -rate 500 -duration 5s   # heavier sustained load
//	bvcload -policy shed             # shed (drop+count) slow peers
//	bvcload -minrate 200             # fail unless ≥200 inst/s achieved
//	bvcload -json                    # BENCH records instead of the summary
//	bvcload -chaos scenario.json     # replay a fault timeline under load
//	bvcload -churn 3                 # replace 3 random processes mid-load
//
// Every instance's decision is checked for hull-containment validity (the
// paper's validity condition) on every process; any error, validity
// violation, or missed -minrate makes the exit status nonzero — the CI
// live-smoke gate.
//
// -chaos loads an internal/chaos scenario and replays its deterministic
// fault timeline (latency, loss, corruption, partitions, crash/restart,
// membership replacement) against the mesh while the load runs: the gate
// then proves the service decides every surviving instance with zero
// validity violations under that fault schedule. Crashed processes sit
// instances out (the survivors stay ≥ n−f for ≤ f concurrent crashes)
// and results lost to a scheduled crash are counted separately, not as
// errors. A "replace" event retires a process permanently and admits a
// successor under the next membership epoch: the survivors are
// Reconfigured, the successor dials in under the new epoch, and load
// keeps flowing across the flip. cmd/bvcload/testdata/ holds the
// committed scenarios CI replays.
//
// -churn N is the scenario-free soak form of the same thing: N seeded
// replacements spread evenly across the run, each retiring a random
// process and admitting its successor at epoch+1.
//
// With -json the output is a bvcbench-schema trajectory fragment: the
// standard leading "calibrate" record followed by live/* records whose
// ns_per_op carry per-instance wall time and latency percentiles, with the
// service counters attached (docs/BENCH_FORMAT.md documents the extra
// fields). The fragment merges into BENCH_*.json trajectories with
// `benchdiff merge`, which rescales by the calibrate record exactly as it
// does for bvcsweep shards.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro"
	"repro/internal/chaos"
	"repro/internal/geometry"
	"repro/internal/harness"
	"repro/internal/hull"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bvcload:", err)
		os.Exit(1)
	}
}

// loadConfig collects the parsed flags.
type loadConfig struct {
	n, f, d   int
	epsilon   float64
	rounds    int
	rate      float64
	duration  time.Duration
	instances int
	policy    string
	shards    int
	seed      int64
	timeout   time.Duration
	minRate   float64
	warmup    int
	outbox    int
	jsonOut   bool
	chaosPath string
	churn     int
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("bvcload", flag.ContinueOnError)
	cfg := loadConfig{}
	fs.IntVar(&cfg.n, "n", 5, "process count (n ≥ (d+2)f+1)")
	fs.IntVar(&cfg.f, "f", 1, "Byzantine tolerance parameter f")
	fs.IntVar(&cfg.d, "d", 2, "vector dimension")
	fs.Float64Var(&cfg.epsilon, "epsilon", 0.05, "ε of ε-agreement")
	fs.IntVar(&cfg.rounds, "rounds", 4, "fixed round horizon per instance (0 = analytic bound; hull validity holds from round 1)")
	fs.Float64Var(&cfg.rate, "rate", 250, "target sustained instances per second (open loop)")
	fs.DurationVar(&cfg.duration, "duration", 2*time.Second, "load duration (with -rate fixes the instance count)")
	fs.IntVar(&cfg.instances, "instances", 0, "exact instance count (overrides rate×duration when > 0)")
	fs.StringVar(&cfg.policy, "policy", "block", "slow-peer policy: block or shed")
	fs.IntVar(&cfg.shards, "shards", 0, "instance shards per process (0 = service default)")
	fs.Int64Var(&cfg.seed, "seed", 1, "master random seed for inputs")
	fs.DurationVar(&cfg.timeout, "timeout", 30*time.Second, "per-instance timeout")
	fs.Float64Var(&cfg.minRate, "minrate", 0, "fail when achieved instances/sec is below this (0 = no gate)")
	fs.IntVar(&cfg.warmup, "warmup", -1, "warmup instances excluded from measurement (-1 = max(10, 5% of count); cold-start tails otherwise dominate p99)")
	fs.IntVar(&cfg.outbox, "outbox", 0, "per-peer outbox depth in frames (0 = service default); partitions queue traffic here, so size it as rate x frames-per-instance x longest partition")
	fs.BoolVar(&cfg.jsonOut, "json", false, "emit bvcbench-schema JSON records instead of the summary")
	fs.StringVar(&cfg.chaosPath, "chaos", "", "chaos scenario JSON (internal/chaos): replay its fault timeline under load")
	fs.IntVar(&cfg.churn, "churn", 0, "membership churn: replace this many seeded-random processes mid-load, each at epoch+1")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := drive(cfg)
	if err != nil {
		return err
	}
	if cfg.jsonOut {
		if err := emitJSON(w, cfg, res); err != nil {
			return err
		}
	} else {
		res.summarize(w, cfg)
	}
	return res.gate(cfg)
}

// loadResult aggregates one load run.
type loadResult struct {
	instances int
	warmup    int           // unmeasured warmup instances run before the clock started
	elapsed   time.Duration // first measured propose to last result
	latencies []time.Duration

	errs     []error // capped sample of instance errors
	errCount int
	invalid  int // decisions outside their instance's input hull

	stats      []bvc.ServiceStats // per process, at quiesce
	background []error            // non-nil Service.Err() values

	chaosMode    bool
	crashAborted int            // per-process results lost to a scheduled crash
	chaos        chaos.Counters // mesh-wide injected-fault totals
}

func (r *loadResult) achievedRate() float64 {
	if r.elapsed <= 0 {
		return 0
	}
	return float64(r.instances) / r.elapsed.Seconds()
}

func (r *loadResult) percentile(q float64) time.Duration {
	if len(r.latencies) == 0 {
		return 0
	}
	idx := int(q*float64(len(r.latencies))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(r.latencies) {
		idx = len(r.latencies) - 1
	}
	return r.latencies[idx]
}

// gate returns the run's verdict: any instance error, background transport
// error, validity violation, or missed rate target is a failure. Under
// -chaos, results lost to a scheduled crash are expected and excluded, and
// read errors are injected damage; on a clean network a read error means
// the wire path itself is broken, so it fails the run.
func (r *loadResult) gate(cfg loadConfig) error {
	if r.errCount > 0 {
		return fmt.Errorf("%d instance errors (first: %v)", r.errCount, r.errs[0])
	}
	if len(r.background) > 0 {
		return fmt.Errorf("background transport errors: %v", r.background[0])
	}
	if r.invalid > 0 {
		return fmt.Errorf("%d decisions violated hull-containment validity", r.invalid)
	}
	if !r.chaosMode {
		var readErrs int64
		for _, s := range r.stats {
			readErrs += s.ReadErrors
		}
		if readErrs > 0 {
			return fmt.Errorf("%d read errors on a fault-free network", readErrs)
		}
	}
	if cfg.minRate > 0 && r.achievedRate() < cfg.minRate {
		return fmt.Errorf("achieved %.1f inst/s, below -minrate %.1f", r.achievedRate(), cfg.minRate)
	}
	return nil
}

// drive runs the load: build the mesh, pace proposals open-loop, collect
// and validate every result, then drain and close the mesh.
func drive(cfg loadConfig) (*loadResult, error) {
	total := cfg.instances
	if total <= 0 {
		total = int(cfg.rate * cfg.duration.Seconds())
		if total < 1 {
			total = 1
		}
	}
	policy := bvc.BlockSlowPeer
	switch cfg.policy {
	case "block":
	case "shed":
		policy = bvc.ShedSlowPeer
	default:
		return nil, fmt.Errorf("unknown -policy %q (want block or shed)", cfg.policy)
	}

	var scn *chaos.Scenario
	var injs []*chaos.Injector
	if cfg.chaosPath != "" {
		var err error
		scn, err = chaos.Load(cfg.chaosPath)
		if err != nil {
			return nil, err
		}
		if err := scn.Validate(cfg.n); err != nil {
			return nil, fmt.Errorf("scenario %q: %w", scn.Name, err)
		}
		injs = make([]*chaos.Injector, cfg.n)
		for i := range injs {
			if injs[i], err = chaos.NewInjector(scn, cfg.n, i); err != nil {
				return nil, err
			}
		}
		defer func() {
			for _, inj := range injs {
				inj.Stop()
			}
		}()
	}

	ccfg := bvc.Config{
		N: cfg.n, F: cfg.f, D: cfg.d,
		Epsilon:   cfg.epsilon,
		Lo:        []float64{0},
		Hi:        []float64{1},
		MaxRounds: cfg.rounds,
	}
	svcs := make([]*bvc.Service, cfg.n)
	crashed := make([]bool, cfg.n)
	var crashMu sync.Mutex // guards svcs and crashed once the crash driver runs
	addrs := make([]string, cfg.n)
	newProc := func(i int, epoch uint64, tmpl []string) (*bvc.Service, error) {
		scfg := bvc.ServiceConfig{
			Config:          ccfg,
			ID:              i,
			Epoch:           epoch,
			Addrs:           tmpl,
			Shards:          cfg.shards,
			SlowPeer:        policy,
			OutboxDepth:     cfg.outbox,
			InstanceTimeout: cfg.timeout,
			Seed:            cfg.seed + int64(i),
		}
		if injs != nil {
			scfg.Transport = injs[i]
		}
		return bvc.NewService(scfg)
	}
	defer func() {
		crashMu.Lock()
		defer crashMu.Unlock()
		for _, s := range svcs {
			if s != nil {
				_ = s.Close()
			}
		}
	}()
	for i := range svcs {
		tmpl := make([]string, cfg.n)
		for j := range tmpl {
			tmpl[j] = "127.0.0.1:0"
		}
		s, err := newProc(i, 0, tmpl)
		if err != nil {
			return nil, fmt.Errorf("process %d: %w", i, err)
		}
		svcs[i] = s
		addrs[i] = s.Addr()
	}
	var wg sync.WaitGroup
	estErrs := make([]error, cfg.n)
	for i, s := range svcs {
		i, s := i, s
		wg.Add(1)
		go func() {
			defer wg.Done()
			estErrs[i] = s.Establish(context.Background(), addrs)
		}()
	}
	wg.Wait()
	for i, err := range estErrs {
		if err != nil {
			return nil, fmt.Errorf("establish process %d: %w", i, err)
		}
	}

	// Proc events: the scenario's crash/restart/replace schedule merged
	// with the -churn synthesis — seeded replacements spread evenly
	// across the run, each admitting an ephemeral-address successor under
	// the next membership epoch.
	var procEvents []chaos.Event
	if scn != nil {
		procEvents = scn.ProcEvents()
	}
	if cfg.churn > 0 {
		churnRng := rand.New(rand.NewSource(cfg.seed + 0x5eed))
		for i := 0; i < cfg.churn; i++ {
			at := time.Duration(float64(cfg.duration) * float64(i+1) / float64(cfg.churn+1))
			procEvents = append(procEvents, chaos.Event{
				At: chaos.Dur(at), Action: chaos.ActionReplace,
				Proc: churnRng.Intn(cfg.n), Addr: "127.0.0.1:0",
			})
		}
		sort.SliceStable(procEvents, func(i, j int) bool { return procEvents[i].At < procEvents[j].At })
	}
	chaosMode := scn != nil || cfg.churn > 0

	// The fault clock starts only after a clean establish, so the scenario
	// timeline is measured from a whole mesh.
	t0 := time.Now()
	eventsDone := make(chan struct{})
	var eventsErr error
	if scn != nil {
		for _, inj := range injs {
			inj.Start(t0)
		}
	}
	if len(procEvents) > 0 {
		go func() {
			defer close(eventsDone)
			// Crash/restart/replace events are the driver's half of the
			// scenario: a crash closes the process abruptly, a restart
			// rebuilds it on the same address and re-establishes against
			// the live mesh, and a replace retires it for good and admits
			// a successor at the next epoch.
			for _, ev := range procEvents {
				time.Sleep(time.Until(t0.Add(ev.At.D())))
				switch ev.Action {
				case chaos.ActionCrash:
					crashMu.Lock()
					s := svcs[ev.Proc]
					crashed[ev.Proc] = true
					crashMu.Unlock()
					_ = s.Close()
				case chaos.ActionRestart:
					var s *bvc.Service
					var err error
					for attempt := 0; attempt < 40; attempt++ {
						if s, err = newProc(ev.Proc, 0, addrs); err == nil {
							break
						}
						time.Sleep(50 * time.Millisecond) // address may linger briefly
					}
					if err != nil {
						eventsErr = fmt.Errorf("restart process %d: %w", ev.Proc, err)
						return
					}
					// Alive again from here: proposals may include the
					// process while Establish completes — its frames queue
					// in the outboxes and flush as each link comes up.
					crashMu.Lock()
					svcs[ev.Proc] = s
					crashed[ev.Proc] = false
					crashMu.Unlock()
					if err := s.Establish(context.Background(), addrs); err != nil {
						eventsErr = fmt.Errorf("re-establish process %d: %w", ev.Proc, err)
						return
					}
				case chaos.ActionReplace:
					// Retire the process permanently, then admit the
					// successor: it listens first (so survivors can dial
					// it), every survivor is Reconfigured to epoch+1 — one
					// call would do, the EpochAnnounce gossip floods the
					// rest, but direct calls make the replay deterministic
					// — and the successor establishes against the new
					// membership.
					crashMu.Lock()
					old := svcs[ev.Proc]
					wasUp := !crashed[ev.Proc]
					crashed[ev.Proc] = true
					crashMu.Unlock()
					if wasUp {
						_ = old.Close()
					}
					var epoch uint64
					crashMu.Lock()
					for i, s := range svcs {
						if i != ev.Proc && !crashed[i] && s.Epoch() > epoch {
							epoch = s.Epoch()
						}
					}
					crashMu.Unlock()
					epoch++
					tmpl := append([]string(nil), addrs...)
					tmpl[ev.Proc] = ev.Addr
					var repl *bvc.Service
					var err error
					for attempt := 0; attempt < 40; attempt++ {
						if repl, err = newProc(ev.Proc, epoch, tmpl); err == nil {
							break
						}
						time.Sleep(50 * time.Millisecond) // fixed addr may linger briefly
					}
					if err != nil {
						eventsErr = fmt.Errorf("replace process %d: %w", ev.Proc, err)
						return
					}
					addrs[ev.Proc] = repl.Addr()
					next := bvc.Membership{Epoch: epoch, Addrs: append([]string(nil), addrs...)}
					crashMu.Lock()
					live := append([]*bvc.Service(nil), svcs...)
					dead := append([]bool(nil), crashed...)
					crashMu.Unlock()
					for i, s := range live {
						if i == ev.Proc || dead[i] {
							continue
						}
						if err := s.Reconfigure(next); err != nil && !errors.Is(err, bvc.ErrStaleEpoch) {
							eventsErr = fmt.Errorf("reconfigure process %d to epoch %d: %w", i, epoch, err)
							return
						}
					}
					crashMu.Lock()
					svcs[ev.Proc] = repl
					crashed[ev.Proc] = false
					crashMu.Unlock()
					if err := repl.Establish(context.Background(), next.Addrs); err != nil {
						eventsErr = fmt.Errorf("establish replacement %d at epoch %d: %w", ev.Proc, epoch, err)
						return
					}
				}
			}
		}()
	} else {
		close(eventsDone)
	}

	warm := cfg.warmup
	if warm < 0 {
		warm = total / 20
		if warm < 10 {
			warm = 10
		}
	}
	res := &loadResult{instances: total, warmup: warm, chaosMode: chaosMode}
	var (
		mu        sync.Mutex
		collected sync.WaitGroup
	)
	rng := rand.New(rand.NewSource(cfg.seed))
	interval := time.Duration(float64(time.Second) / cfg.rate)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()

	// Warmup instances (ids 1..warm) run at the same pace but are excluded
	// from the latency sample and the throughput clock: they absorb the
	// cold-start transient (empty frame pools, growing heap) that would
	// otherwise dominate p99. Their errors still count — correctness does
	// not get a warmup.
	var start time.Time
	grand := warm + total
	for id := uint64(1); id <= uint64(grand); id++ {
		if id > 1 {
			<-ticker.C // open-loop pacing: never waits for completions
		}
		measured := id > uint64(warm)
		if id == uint64(warm)+1 {
			start = time.Now()
		}
		// Crashed processes sit the instance out: the survivors are still
		// ≥ n−f for ≤ f concurrently crashed, so the instance decides, and
		// validity is checked against the inputs actually proposed.
		crashMu.Lock()
		targets := make([]*bvc.Service, cfg.n)
		for i, s := range svcs {
			if !crashed[i] {
				targets[i] = s
			}
		}
		crashMu.Unlock()
		inputs := make([]geometry.Vector, 0, cfg.n)
		chans := make([]<-chan bvc.ServiceResult, 0, cfg.n)
		for i, s := range targets {
			v := make(geometry.Vector, cfg.d)
			for j := range v {
				v[j] = rng.Float64()
			}
			if s == nil {
				continue
			}
			ch, err := s.Propose(id, bvc.Vector(v))
			if err != nil {
				if chaosMode && errors.Is(err, bvc.ErrServiceClosed) {
					// Lost the race with a scheduled crash.
					mu.Lock()
					res.crashAborted++
					mu.Unlock()
					continue
				}
				return nil, fmt.Errorf("propose instance %d on process %d: %w", id, i, err)
			}
			inputs = append(inputs, v)
			chans = append(chans, ch)
		}
		collected.Add(1)
		go func(id uint64, measured bool, inputs []geometry.Vector, chans []<-chan bvc.ServiceResult) {
			defer collected.Done()
			var worst time.Duration
			var failure error
			bad := 0
			for _, ch := range chans {
				r := <-ch
				if r.Err != nil {
					if chaosMode && errors.Is(r.Err, bvc.ErrServiceClosed) {
						// In flight on a process when its crash fired.
						mu.Lock()
						res.crashAborted++
						mu.Unlock()
						continue
					}
					failure = r.Err
					continue
				}
				if r.Elapsed > worst {
					worst = r.Elapsed
				}
				in, err := hull.Contains(inputs, geometry.Vector(r.Decision), 1e-9)
				if err != nil {
					failure = err
				} else if !in {
					bad++
				}
			}
			mu.Lock()
			defer mu.Unlock()
			if failure != nil {
				res.errCount++
				if len(res.errs) < 8 {
					res.errs = append(res.errs, fmt.Errorf("instance %d: %w", id, failure))
				}
			} else if measured {
				res.latencies = append(res.latencies, worst)
			}
			res.invalid += bad
		}(id, measured, inputs, chans)
	}
	collected.Wait()
	res.elapsed = time.Since(start)
	sort.Slice(res.latencies, func(i, j int) bool { return res.latencies[i] < res.latencies[j] })

	// Let the scenario's crash/restart schedule finish (every committed
	// scenario restarts what it crashed), then total the injected faults.
	<-eventsDone
	if eventsErr != nil {
		return nil, eventsErr
	}
	for _, inj := range injs {
		res.chaos.Add(inj.Counters())
	}

	// Graceful wind-down: drain every process (all instances already
	// finished, so this is a goodbye + bookkeeping pass), then Close via
	// the deferred cleanup.
	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	crashMu.Lock()
	final := append([]*bvc.Service(nil), svcs...)
	crashMu.Unlock()
	for i, s := range final {
		if err := s.Drain(drainCtx); err != nil {
			return nil, fmt.Errorf("drain process %d: %w", i, err)
		}
		if err := s.Err(); err != nil {
			res.background = append(res.background, fmt.Errorf("process %d: %w", i, err))
		}
		res.stats = append(res.stats, s.Stats())
	}
	return res, nil
}

// summarize renders the human-readable report.
func (r *loadResult) summarize(w io.Writer, cfg loadConfig) {
	fmt.Fprintf(w, "bvcload: n=%d f=%d d=%d rounds=%d policy=%s\n", cfg.n, cfg.f, cfg.d, cfg.rounds, cfg.policy)
	fmt.Fprintf(w, "instances  %d (+%d warmup) in %v (target %.0f/s, achieved %.1f/s)\n",
		r.instances, r.warmup, r.elapsed.Round(time.Millisecond), cfg.rate, r.achievedRate())
	fmt.Fprintf(w, "latency    p50 %v  p99 %v  max %v\n",
		r.percentile(0.50).Round(time.Microsecond), r.percentile(0.99).Round(time.Microsecond), r.percentile(1.0).Round(time.Microsecond))
	fmt.Fprintf(w, "errors     %d instance, %d background, %d validity violations\n",
		r.errCount, len(r.background), r.invalid)
	var st bvc.ServiceStats
	for _, s := range r.stats {
		st.FramesIn += s.FramesIn
		st.FramesOut += s.FramesOut
		st.BytesOut += s.BytesOut
		st.SlowPeerSheds += s.SlowPeerSheds
		st.WriteDrops += s.WriteDrops
		st.WriteRetries += s.WriteRetries
		st.PendingDropped += s.PendingDropped
		st.Reconnects += s.Reconnects
		st.ReadErrors += s.ReadErrors
		st.DialFailures += s.DialFailures
		st.LingerExtensions += s.LingerExtensions
		st.Reconfigures += s.Reconfigures
		st.StaleEpochRejects += s.StaleEpochRejects
		st.RetiredEpochs += s.RetiredEpochs
		if s.Epoch > st.Epoch {
			st.Epoch = s.Epoch
		}
	}
	fmt.Fprintf(w, "transport  %d frames out, %d in, %d bytes out, %d sheds, %d write drops, %d write retries, %d pending drops, %d reconnects\n",
		st.FramesOut, st.FramesIn, st.BytesOut, st.SlowPeerSheds, st.WriteDrops, st.WriteRetries, st.PendingDropped, st.Reconnects)
	if st.Reconfigures > 0 {
		fmt.Fprintf(w, "epochs     at epoch %d, %d reconfigures, %d stale-epoch rejects, %d retired link sets\n",
			st.Epoch, st.Reconfigures, st.StaleEpochRejects, st.RetiredEpochs)
	}
	if r.chaosMode {
		fmt.Fprintf(w, "degraded   %d read errors, %d dial failures, %d linger extensions, %d crash-aborted results\n",
			st.ReadErrors, st.DialFailures, st.LingerExtensions, r.crashAborted)
		c := r.chaos
		fmt.Fprintf(w, "chaos      %d frames seen: %d delayed, %d dropped, %d dup, %d reordered, %d corrupted, %d blackholed; %d conns killed, %d dials refused\n",
			c.Frames, c.Delayed, c.Dropped, c.Duplicated, c.Reordered, c.Corrupted, c.Blackholed, c.KilledConns, c.RefusedDials)
	}
}

// loadRecord is one bvcload JSON record: the bvcbench benchRecord schema
// plus live-load extension fields (ignored by benchdiff's comparator;
// documented in docs/BENCH_FORMAT.md).
type loadRecord struct {
	Benchmark   string  `json:"benchmark"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Pass        bool    `json:"pass"`
	Seconds     float64 `json:"seconds"`
	GoMaxProcs  int     `json:"gomaxprocs"`

	Processes      int     `json:"processes,omitempty"`
	Instances      int     `json:"instances,omitempty"`
	TargetRate     float64 `json:"target_rate,omitempty"`
	AchievedRate   float64 `json:"achieved_rate,omitempty"`
	FramesIn       int64   `json:"frames_in,omitempty"`
	FramesOut      int64   `json:"frames_out,omitempty"`
	BytesIn        int64   `json:"bytes_in,omitempty"`
	BytesOut       int64   `json:"bytes_out,omitempty"`
	SlowPeerSheds  int64   `json:"slow_peer_sheds,omitempty"`
	WriteDrops     int64   `json:"write_drops,omitempty"`
	WriteRetries   int64   `json:"write_retries,omitempty"`
	PendingDropped int64   `json:"pending_dropped,omitempty"`
	Reconnects     int64   `json:"reconnects,omitempty"`
	ReadErrors     int64   `json:"read_errors,omitempty"`

	ChaosFrames    int64 `json:"chaos_frames,omitempty"`
	ChaosDropped   int64 `json:"chaos_dropped,omitempty"`
	ChaosCorrupted int64 `json:"chaos_corrupted,omitempty"`
	CrashAborted   int64 `json:"crash_aborted,omitempty"`

	Epoch             uint64 `json:"epoch,omitempty"`
	Reconfigures      int64  `json:"reconfigures,omitempty"`
	StaleEpochRejects int64  `json:"stale_epoch_rejects,omitempty"`
	RetiredEpochs     int64  `json:"retired_epochs,omitempty"`
}

// emitJSON writes the trajectory fragment: calibrate first (the hardware
// normalization record every BENCH file leads with), then the live/*
// records.
func emitJSON(w io.Writer, cfg loadConfig, res *loadResult) error {
	enc := json.NewEncoder(w)
	tbl, br, _, err := harness.MeasureTable(harness.Calibrate)
	if err != nil {
		return fmt.Errorf("calibrate: %w", err)
	}
	if err := enc.Encode(loadRecord{
		Benchmark:   "calibrate",
		Iterations:  br.N,
		NsPerOp:     br.NsPerOp(),
		AllocsPerOp: br.AllocsPerOp(),
		BytesPerOp:  br.AllocedBytesPerOp(),
		Pass:        tbl != nil && tbl.Pass,
		Seconds:     br.T.Seconds(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
	}); err != nil {
		return err
	}
	pass := res.gate(cfg) == nil
	var st bvc.ServiceStats
	for _, s := range res.stats {
		st.FramesIn += s.FramesIn
		st.FramesOut += s.FramesOut
		st.BytesIn += s.BytesIn
		st.BytesOut += s.BytesOut
		st.SlowPeerSheds += s.SlowPeerSheds
		st.WriteDrops += s.WriteDrops
		st.WriteRetries += s.WriteRetries
		st.PendingDropped += s.PendingDropped
		st.Reconnects += s.Reconnects
		st.ReadErrors += s.ReadErrors
		st.Reconfigures += s.Reconfigures
		st.StaleEpochRejects += s.StaleEpochRejects
		st.RetiredEpochs += s.RetiredEpochs
		if s.Epoch > st.Epoch {
			st.Epoch = s.Epoch
		}
	}
	perInstance := int64(0)
	if res.instances > 0 {
		perInstance = res.elapsed.Nanoseconds() / int64(res.instances)
	}
	records := []loadRecord{
		{
			Benchmark: "live/instance", Iterations: res.instances, NsPerOp: perInstance,
			Processes: cfg.n, Instances: res.instances,
			TargetRate: cfg.rate, AchievedRate: res.achievedRate(),
			FramesIn: st.FramesIn, FramesOut: st.FramesOut,
			BytesIn: st.BytesIn, BytesOut: st.BytesOut,
			SlowPeerSheds: st.SlowPeerSheds, WriteDrops: st.WriteDrops,
			WriteRetries:   st.WriteRetries,
			PendingDropped: st.PendingDropped, Reconnects: st.Reconnects,
			ReadErrors:  st.ReadErrors,
			ChaosFrames: res.chaos.Frames, ChaosDropped: res.chaos.Dropped,
			ChaosCorrupted: res.chaos.Corrupted, CrashAborted: int64(res.crashAborted),
			Epoch: st.Epoch, Reconfigures: st.Reconfigures,
			StaleEpochRejects: st.StaleEpochRejects, RetiredEpochs: st.RetiredEpochs,
		},
		{Benchmark: "live/latency_p50", Iterations: res.instances, NsPerOp: res.percentile(0.50).Nanoseconds()},
		{Benchmark: "live/latency_p99", Iterations: res.instances, NsPerOp: res.percentile(0.99).Nanoseconds()},
	}
	for i := range records {
		records[i].Pass = pass
		records[i].Seconds = res.elapsed.Seconds()
		records[i].GoMaxProcs = runtime.GOMAXPROCS(0)
		if err := enc.Encode(records[i]); err != nil {
			return err
		}
	}
	return nil
}
