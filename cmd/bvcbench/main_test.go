package main

import "testing"

func TestRunSingleExperiments(t *testing.T) {
	// The cheap experiments; "all" is covered by the harness test suite.
	for _, exp := range []string{"e4", "e8", "f1", "f2"} {
		if err := run([]string{"-experiment", exp}); err != nil {
			t.Errorf("run(%s): %v", exp, err)
		}
	}
}

func TestRunCustomSeedAndTrials(t *testing.T) {
	if err := run([]string{"-experiment", "e3", "-seed", "5", "-trials", "3"}); err != nil {
		t.Errorf("e3 with custom flags: %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "e42"}); err == nil {
		t.Error("unknown experiment: expected error")
	}
}
