// Command bvcbench regenerates the paper-reproduction experiment tables
// E1–E10 and figures F1/F2 (the README's experiment table summarizes what
// each demonstrates).
//
// Usage:
//
//	bvcbench                     # run everything
//	bvcbench -experiment e5      # one experiment
//	bvcbench -seed 7             # change the master seed
//	bvcbench -json               # benchmark mode: per-experiment JSON
//	                             # records (ns/op, allocs/op, B/op) for the
//	                             # BENCH_*.json perf trajectory
//	bvcbench -workers 1 -gammacache=false   # serial, uncached Γ engine
//	bvcbench -nodeworkers 1      # step simulated nodes serially (0 =
//	                             # GOMAXPROCS; results are bit-identical,
//	                             # only wall clock changes)
//
// BENCH workflow: `bvcbench -json > BENCH_baseline.json` is committed at
// the repository root as the performance trajectory point for the current
// code. CI regenerates the same records into a BENCH_pr.json artifact and
// gates merges with cmd/benchdiff, which fails on >25% ns/op regression
// after normalizing by the "calibrate" record (a fixed CPU workload that
// absorbs hardware-speed differences between the baseline machine and the
// CI runner). The e10 scale sweep is additionally measured with serial
// node stepping ("e10/nodeworkers=1") so the trajectory records the
// cross-node parallelism headroom.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/harness"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bvcbench:", err)
		os.Exit(1)
	}
}

// benchRecord is one -json output line (see docs/BENCH_FORMAT.md for the
// full schema). GoMaxProcs records the recording machine's parallelism:
// the calibration workload is single-threaded, so cmd/benchdiff can only
// normalize per-core speed and warns when the core counts of two
// trajectories differ (parallel experiments then shift by the core-count
// ratio, not by code changes).
type benchRecord struct {
	Benchmark   string  `json:"benchmark"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Pass        bool    `json:"pass"`
	Seconds     float64 `json:"seconds"`
	GoMaxProcs  int     `json:"gomaxprocs"`

	// Γ-engine reuse counters (per-op: measured deltas divided by the
	// iteration count) and the derived reuse rate; see
	// docs/BENCH_FORMAT.md. Zero-valued fields are omitted so records of
	// Γ-free targets (calibrate) stay unchanged.
	GammaSolves     int64   `json:"gamma_solves,omitempty"`
	GammaCacheHits  int64   `json:"gamma_cache_hits,omitempty"`
	GammaPrefixHits int64   `json:"gamma_prefix_hits,omitempty"`
	GammaRoundHits  int64   `json:"gamma_round_hits,omitempty"`
	GammaReuseRate  float64 `json:"gamma_reuse_rate,omitempty"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("bvcbench", flag.ContinueOnError)
	experiment := fs.String("experiment", "all", "experiment to run: all, e1…e10, f1, f2")
	seed := fs.Int64("seed", 1, "master random seed")
	trials := fs.Int("trials", 20, "trial count for statistical experiments (E3)")
	jsonOut := fs.Bool("json", false, "benchmark each experiment and emit one JSON record per line (ns/op, allocs/op) instead of rendering tables")
	workers := fs.Int("workers", 0, "Γ-point engine worker bound: 0 = GOMAXPROCS, 1 = serial")
	gammaCache := fs.Bool("gammacache", true, "memoize Γ-points across processes and rounds")
	nodeWorkers := fs.Int("nodeworkers", 0, "simulated-node stepping worker bound: 0 = GOMAXPROCS, 1 = serial")
	if err := fs.Parse(args); err != nil {
		return err
	}
	harness.SetEngineOptions(*workers, !*gammaCache, *nodeWorkers)

	runners := harness.Runners(*seed, *trials)

	// ExperimentOrder and Runners must describe the same experiment set;
	// catching a drift here beats silently dropping an experiment from the
	// -json trajectory (or calling a nil runner).
	if len(harness.ExperimentOrder) != len(runners) {
		return fmt.Errorf("internal: ExperimentOrder lists %d experiments, Runners %d", len(harness.ExperimentOrder), len(runners))
	}
	for _, n := range harness.ExperimentOrder {
		if _, ok := runners[n]; !ok {
			return fmt.Errorf("internal: ExperimentOrder entry %q has no runner", n)
		}
	}

	name := strings.ToLower(*experiment)
	if *jsonOut {
		names := harness.ExperimentOrder
		if name != "all" {
			if _, ok := runners[name]; !ok {
				return fmt.Errorf("unknown experiment %q (want all, e1…e10, f1, f2)", name)
			}
			names = []string{name}
		}
		// The calibration record leads every trajectory: a fixed CPU
		// workload whose ratio between two BENCH files estimates the
		// hardware-speed delta, letting cmd/benchdiff compare files
		// recorded on different machines.
		targets := []benchTarget{{name: "calibrate", run: harness.Calibrate}}
		for _, n := range names {
			targets = append(targets, benchTarget{name: n, run: runners[n]})
			if n == "e10" {
				// The scale sweep is also measured with serial node
				// stepping, so the trajectory records the speedup of
				// SimOptions.NodeWorkers on the n = 13 grids — and its
				// restricted/async n = 15 rows are measured individually,
				// tracking the incremental Γ engine's hot path per row.
				targets = append(targets, benchTarget{
					name: "e10/nodeworkers=1",
					run: func() (*harness.Table, error) {
						return harness.RunSerialNodes(runners["e10"])
					},
				})
				for _, cell := range harness.E10RowCells {
					targets = append(targets, benchTarget{
						name: harness.E10RowName(cell),
						run:  harness.E10RowRunner(cell),
					})
				}
			}
		}
		return benchJSON(os.Stdout, targets)
	}

	if name == "all" {
		tables, err := harness.All(*seed)
		if err != nil {
			return err
		}
		allPass := true
		for _, tbl := range tables {
			if err := tbl.Render(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
			if !tbl.Pass {
				allPass = false
			}
		}
		if !allPass {
			return fmt.Errorf("one or more experiments failed")
		}
		return nil
	}

	r, ok := runners[name]
	if !ok {
		return fmt.Errorf("unknown experiment %q (want all, e1…e10, f1, f2)", name)
	}
	tbl, err := r()
	if err != nil {
		return err
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}
	if !tbl.Pass {
		return fmt.Errorf("experiment %s failed", strings.ToUpper(name))
	}
	return nil
}

// benchTarget is one measured entry of a BENCH_*.json trajectory.
type benchTarget struct {
	name string
	run  func() (*harness.Table, error)
}

// benchJSON measures each target with harness.MeasureTable — the shared
// cold-cache benchmark protocol, also used by cmd/bvcsweep workers, which
// is what keeps bvcbench- and bvcsweep-recorded ns/op comparable — and
// writes one JSON record per line, so successive PRs can archive
// comparable BENCH_*.json trajectory points.
func benchJSON(w *os.File, targets []benchTarget) error {
	enc := json.NewEncoder(w)
	for _, target := range targets {
		tbl, br, counters, rerr := harness.MeasureTable(target.run)
		if rerr != nil {
			return fmt.Errorf("%s: %w", target.name, rerr)
		}
		rec := benchRecord{
			Benchmark:   target.name,
			Iterations:  br.N,
			NsPerOp:     br.NsPerOp(),
			AllocsPerOp: br.AllocsPerOp(),
			BytesPerOp:  br.AllocedBytesPerOp(),
			Pass:        tbl != nil && tbl.Pass,
			Seconds:     br.T.Seconds(),
			GoMaxProcs:  runtime.GOMAXPROCS(0),

			// MeasureTable's counters are already per-op.
			GammaSolves:     int64(counters.Solves),
			GammaCacheHits:  int64(counters.CacheHits),
			GammaPrefixHits: int64(counters.PrefixHits),
			GammaRoundHits:  int64(counters.RoundHits),
			GammaReuseRate:  counters.ReuseRate(),
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
		if !rec.Pass {
			return fmt.Errorf("experiment %s failed", strings.ToUpper(target.name))
		}
	}
	return nil
}
