// Command bvcbench regenerates the paper-reproduction experiment tables
// E1–E10 and figures F1/F2 (see DESIGN.md §3 and EXPERIMENTS.md).
//
// Usage:
//
//	bvcbench                     # run everything
//	bvcbench -experiment e5      # one experiment
//	bvcbench -seed 7             # change the master seed
//	bvcbench -json               # benchmark mode: per-experiment JSON
//	                             # records (ns/op, allocs/op, B/op) for the
//	                             # BENCH_*.json perf trajectory
//	bvcbench -workers 1 -gammacache=false   # serial, uncached Γ engine
//	bvcbench -nodeworkers 1      # step simulated nodes serially (0 =
//	                             # GOMAXPROCS; results are bit-identical,
//	                             # only wall clock changes)
//
// BENCH workflow: `bvcbench -json > BENCH_baseline.json` is committed at
// the repository root as the performance trajectory point for the current
// code. CI regenerates the same records into a BENCH_pr.json artifact and
// gates merges with cmd/benchdiff, which fails on >25% ns/op regression
// after normalizing by the "calibrate" record (a fixed CPU workload that
// absorbs hardware-speed differences between the baseline machine and the
// CI runner). The e10 scale sweep is additionally measured with serial
// node stepping ("e10/nodeworkers=1") so the trajectory records the
// cross-node parallelism headroom.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"testing"

	"repro"
	"repro/internal/harness"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bvcbench:", err)
		os.Exit(1)
	}
}

// experimentOrder fixes the emission order of -json records and of "all".
var experimentOrder = []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "f1", "f2"}

// benchRecord is one -json output line. GoMaxProcs records the recording
// machine's parallelism: the calibration workload is single-threaded, so
// cmd/benchdiff can only normalize per-core speed and warns when the core
// counts of two trajectories differ (parallel experiments then shift by
// the core-count ratio, not by code changes).
type benchRecord struct {
	Benchmark   string  `json:"benchmark"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Pass        bool    `json:"pass"`
	Seconds     float64 `json:"seconds"`
	GoMaxProcs  int     `json:"gomaxprocs"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("bvcbench", flag.ContinueOnError)
	experiment := fs.String("experiment", "all", "experiment to run: all, e1…e10, f1, f2")
	seed := fs.Int64("seed", 1, "master random seed")
	trials := fs.Int("trials", 20, "trial count for statistical experiments (E3)")
	jsonOut := fs.Bool("json", false, "benchmark each experiment and emit one JSON record per line (ns/op, allocs/op) instead of rendering tables")
	workers := fs.Int("workers", 0, "Γ-point engine worker bound: 0 = GOMAXPROCS, 1 = serial")
	gammaCache := fs.Bool("gammacache", true, "memoize Γ-points across processes and rounds")
	nodeWorkers := fs.Int("nodeworkers", 0, "simulated-node stepping worker bound: 0 = GOMAXPROCS, 1 = serial")
	if err := fs.Parse(args); err != nil {
		return err
	}
	harness.SetEngineOptions(*workers, !*gammaCache, *nodeWorkers)

	runners := map[string]func() (*harness.Table, error){
		"e1":  func() (*harness.Table, error) { return harness.E1SyncNecessity(*seed) },
		"e2":  func() (*harness.Table, error) { return harness.E2ExactSufficiency(*seed) },
		"e3":  func() (*harness.Table, error) { return harness.E3TverbergLemma(*seed, *trials) },
		"e4":  harness.E4AsyncNecessity,
		"e5":  func() (*harness.Table, error) { return harness.E5AsyncConvergence(*seed) },
		"e6":  func() (*harness.Table, error) { return harness.E6RestrictedSync(*seed) },
		"e7":  func() (*harness.Table, error) { return harness.E7RestrictedAsync(*seed) },
		"e8":  func() (*harness.Table, error) { return harness.E8CoordinateWise(*seed) },
		"e9":  func() (*harness.Table, error) { return harness.E9WitnessAblation(*seed) },
		"e10": func() (*harness.Table, error) { return harness.E10ScaleSweep(*seed) },
		"f1":  harness.F1Heptagon,
		"f2":  func() (*harness.Table, error) { return harness.F2ConvergenceSeries(*seed) },
	}

	// experimentOrder and runners must describe the same experiment set;
	// catching a drift here beats silently dropping an experiment from the
	// -json trajectory (or calling a nil runner).
	if len(experimentOrder) != len(runners) {
		return fmt.Errorf("internal: experimentOrder lists %d experiments, runners %d", len(experimentOrder), len(runners))
	}
	for _, n := range experimentOrder {
		if _, ok := runners[n]; !ok {
			return fmt.Errorf("internal: experimentOrder entry %q has no runner", n)
		}
	}

	name := strings.ToLower(*experiment)
	if *jsonOut {
		names := experimentOrder
		if name != "all" {
			if _, ok := runners[name]; !ok {
				return fmt.Errorf("unknown experiment %q (want all, e1…e10, f1, f2)", name)
			}
			names = []string{name}
		}
		// The calibration record leads every trajectory: a fixed CPU
		// workload whose ratio between two BENCH files estimates the
		// hardware-speed delta, letting cmd/benchdiff compare files
		// recorded on different machines.
		targets := []benchTarget{{name: "calibrate", run: calibrateTable}}
		for _, n := range names {
			targets = append(targets, benchTarget{name: n, run: runners[n]})
			if n == "e10" {
				// The scale sweep is also measured with serial node
				// stepping, so the trajectory records the speedup of
				// SimOptions.NodeWorkers on the n = 13 grids.
				targets = append(targets, benchTarget{
					name: "e10/nodeworkers=1",
					run: func() (*harness.Table, error) {
						harness.SetEngineOptions(*workers, !*gammaCache, 1)
						defer harness.SetEngineOptions(*workers, !*gammaCache, *nodeWorkers)
						return harness.E10ScaleSweep(*seed)
					},
				})
			}
		}
		return benchJSON(os.Stdout, targets)
	}

	if name == "all" {
		tables, err := harness.All(*seed)
		if err != nil {
			return err
		}
		allPass := true
		for _, tbl := range tables {
			if err := tbl.Render(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
			if !tbl.Pass {
				allPass = false
			}
		}
		if !allPass {
			return fmt.Errorf("one or more experiments failed")
		}
		return nil
	}

	r, ok := runners[name]
	if !ok {
		return fmt.Errorf("unknown experiment %q (want all, e1…e10, f1, f2)", name)
	}
	tbl, err := r()
	if err != nil {
		return err
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}
	if !tbl.Pass {
		return fmt.Errorf("experiment %s failed", strings.ToUpper(name))
	}
	return nil
}

// benchTarget is one measured entry of a BENCH_*.json trajectory.
type benchTarget struct {
	name string
	run  func() (*harness.Table, error)
}

// benchJSON measures each target with the standard benchmark machinery and
// writes one JSON record per line, so successive PRs can archive comparable
// BENCH_*.json trajectory points. The Γ-point caches are reset before every
// iteration so each measures a cold-cache experiment run (within-run
// memoization still counts — that is product behavior); without the reset,
// later iterations replay the process-wide memo table and ns/op would
// shrink with iteration count instead of measuring the engine.
func benchJSON(w *os.File, targets []benchTarget) error {
	enc := json.NewEncoder(w)
	for _, target := range targets {
		var (
			tbl  *harness.Table
			rerr error
		)
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bvc.ResetEngineCaches()
				tbl, rerr = target.run()
				if rerr != nil {
					b.Fatalf("%s: %v", target.name, rerr)
				}
			}
		})
		if rerr != nil {
			return fmt.Errorf("%s: %w", target.name, rerr)
		}
		rec := benchRecord{
			Benchmark:   target.name,
			Iterations:  br.N,
			NsPerOp:     br.NsPerOp(),
			AllocsPerOp: br.AllocsPerOp(),
			BytesPerOp:  br.AllocedBytesPerOp(),
			Pass:        tbl != nil && tbl.Pass,
			Seconds:     br.T.Seconds(),
			GoMaxProcs:  runtime.GOMAXPROCS(0),
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
		if !rec.Pass {
			return fmt.Errorf("experiment %s failed", strings.ToUpper(target.name))
		}
	}
	return nil
}

// calibrateSink keeps the calibration kernel's result observable so the
// compiler cannot elide the work.
var calibrateSink float64

// calibrateTable runs a fixed, deterministic CPU workload that is
// deliberately INDEPENDENT of every product kernel: it must measure only
// machine speed. Building it from the suite's own hot paths would be
// self-defeating — a regression in those kernels would slow the
// calibration record equally and benchdiff's normalization would cancel
// the very signal the gate exists to catch. The mix (floating-point
// arithmetic plus a pseudo-random walk over an L1/L2-sized buffer)
// approximates the suite's compute/memory balance without sharing any of
// its code.
func calibrateTable() (*harness.Table, error) {
	x, s := 1.1, 0.0
	for i := 0; i < 4_000_000; i++ {
		x = x*1.0000001 + 1e-9
		if x > 2 {
			x--
		}
		s += math.Sqrt(x)
	}
	buf := make([]float64, 1<<15)
	for i := range buf {
		buf[i] = float64(i%97) * 0.5
	}
	idx := 1
	for iter := 0; iter < 150; iter++ {
		for j := range buf {
			idx = (idx*1103515245 + 12345) & (len(buf) - 1)
			buf[j] = buf[idx]*0.9999 + float64(j&7)
		}
	}
	calibrateSink = s + buf[0]
	return &harness.Table{ID: "calibrate", Pass: true}, nil
}
