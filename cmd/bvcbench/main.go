// Command bvcbench regenerates the paper-reproduction experiment tables
// E1–E9 and figure F1 (see DESIGN.md §3 and EXPERIMENTS.md).
//
// Usage:
//
//	bvcbench                     # run everything
//	bvcbench -experiment e5      # one experiment
//	bvcbench -seed 7             # change the master seed
//	bvcbench -json               # benchmark mode: per-experiment JSON
//	                             # records (ns/op, allocs/op, B/op) for the
//	                             # BENCH_*.json perf trajectory
//	bvcbench -workers 1 -gammacache=false   # serial, uncached Γ engine
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"

	"repro"
	"repro/internal/harness"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bvcbench:", err)
		os.Exit(1)
	}
}

// experimentOrder fixes the emission order of -json records and of "all".
var experimentOrder = []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "f1", "f2"}

// benchRecord is one -json output line.
type benchRecord struct {
	Benchmark   string  `json:"benchmark"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Pass        bool    `json:"pass"`
	Seconds     float64 `json:"seconds"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("bvcbench", flag.ContinueOnError)
	experiment := fs.String("experiment", "all", "experiment to run: all, e1…e9, f1, f2")
	seed := fs.Int64("seed", 1, "master random seed")
	trials := fs.Int("trials", 20, "trial count for statistical experiments (E3)")
	jsonOut := fs.Bool("json", false, "benchmark each experiment and emit one JSON record per line (ns/op, allocs/op) instead of rendering tables")
	workers := fs.Int("workers", 0, "Γ-point engine worker bound: 0 = GOMAXPROCS, 1 = serial")
	gammaCache := fs.Bool("gammacache", true, "memoize Γ-points across processes and rounds")
	if err := fs.Parse(args); err != nil {
		return err
	}
	harness.SetEngineOptions(*workers, !*gammaCache)

	runners := map[string]func() (*harness.Table, error){
		"e1": func() (*harness.Table, error) { return harness.E1SyncNecessity(*seed) },
		"e2": func() (*harness.Table, error) { return harness.E2ExactSufficiency(*seed) },
		"e3": func() (*harness.Table, error) { return harness.E3TverbergLemma(*seed, *trials) },
		"e4": harness.E4AsyncNecessity,
		"e5": func() (*harness.Table, error) { return harness.E5AsyncConvergence(*seed) },
		"e6": func() (*harness.Table, error) { return harness.E6RestrictedSync(*seed) },
		"e7": func() (*harness.Table, error) { return harness.E7RestrictedAsync(*seed) },
		"e8": func() (*harness.Table, error) { return harness.E8CoordinateWise(*seed) },
		"e9": func() (*harness.Table, error) { return harness.E9WitnessAblation(*seed) },
		"f1": harness.F1Heptagon,
		"f2": func() (*harness.Table, error) { return harness.F2ConvergenceSeries(*seed) },
	}

	// experimentOrder and runners must describe the same experiment set;
	// catching a drift here beats silently dropping an experiment from the
	// -json trajectory (or calling a nil runner).
	if len(experimentOrder) != len(runners) {
		return fmt.Errorf("internal: experimentOrder lists %d experiments, runners %d", len(experimentOrder), len(runners))
	}
	for _, n := range experimentOrder {
		if _, ok := runners[n]; !ok {
			return fmt.Errorf("internal: experimentOrder entry %q has no runner", n)
		}
	}

	name := strings.ToLower(*experiment)
	if *jsonOut {
		names := experimentOrder
		if name != "all" {
			if _, ok := runners[name]; !ok {
				return fmt.Errorf("unknown experiment %q (want all, e1…e9, f1, f2)", name)
			}
			names = []string{name}
		}
		return benchJSON(os.Stdout, names, runners)
	}

	if name == "all" {
		tables, err := harness.All(*seed)
		if err != nil {
			return err
		}
		allPass := true
		for _, tbl := range tables {
			if err := tbl.Render(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
			if !tbl.Pass {
				allPass = false
			}
		}
		if !allPass {
			return fmt.Errorf("one or more experiments failed")
		}
		return nil
	}

	r, ok := runners[name]
	if !ok {
		return fmt.Errorf("unknown experiment %q (want all, e1…e9, f1, f2)", name)
	}
	tbl, err := r()
	if err != nil {
		return err
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}
	if !tbl.Pass {
		return fmt.Errorf("experiment %s failed", strings.ToUpper(name))
	}
	return nil
}

// benchJSON measures each named experiment with the standard benchmark
// machinery and writes one JSON record per line, so successive PRs can
// archive comparable BENCH_*.json trajectory points. The Γ-point caches are
// reset before every iteration so each measures a cold-cache experiment run
// (within-run memoization still counts — that is product behavior); without
// the reset, later iterations replay the process-wide memo table and ns/op
// would shrink with iteration count instead of measuring the engine.
func benchJSON(w *os.File, names []string, runners map[string]func() (*harness.Table, error)) error {
	enc := json.NewEncoder(w)
	for _, name := range names {
		r := runners[name]
		var (
			tbl  *harness.Table
			rerr error
		)
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bvc.ResetEngineCaches()
				tbl, rerr = r()
				if rerr != nil {
					b.Fatalf("%s: %v", name, rerr)
				}
			}
		})
		if rerr != nil {
			return fmt.Errorf("%s: %w", name, rerr)
		}
		rec := benchRecord{
			Benchmark:   name,
			Iterations:  br.N,
			NsPerOp:     br.NsPerOp(),
			AllocsPerOp: br.AllocsPerOp(),
			BytesPerOp:  br.AllocedBytesPerOp(),
			Pass:        tbl != nil && tbl.Pass,
			Seconds:     br.T.Seconds(),
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
		if !rec.Pass {
			return fmt.Errorf("experiment %s failed", strings.ToUpper(name))
		}
	}
	return nil
}
