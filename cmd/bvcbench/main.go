// Command bvcbench regenerates the paper-reproduction experiment tables
// E1–E9 and figure F1 (see DESIGN.md §3 and EXPERIMENTS.md).
//
// Usage:
//
//	bvcbench                     # run everything
//	bvcbench -experiment e5      # one experiment
//	bvcbench -seed 7             # change the master seed
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/harness"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bvcbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bvcbench", flag.ContinueOnError)
	experiment := fs.String("experiment", "all", "experiment to run: all, e1…e9, f1, f2")
	seed := fs.Int64("seed", 1, "master random seed")
	trials := fs.Int("trials", 20, "trial count for statistical experiments (E3)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	type runner func() (*harness.Table, error)
	runners := map[string]runner{
		"e1": func() (*harness.Table, error) { return harness.E1SyncNecessity(*seed) },
		"e2": func() (*harness.Table, error) { return harness.E2ExactSufficiency(*seed) },
		"e3": func() (*harness.Table, error) { return harness.E3TverbergLemma(*seed, *trials) },
		"e4": harness.E4AsyncNecessity,
		"e5": func() (*harness.Table, error) { return harness.E5AsyncConvergence(*seed) },
		"e6": func() (*harness.Table, error) { return harness.E6RestrictedSync(*seed) },
		"e7": func() (*harness.Table, error) { return harness.E7RestrictedAsync(*seed) },
		"e8": func() (*harness.Table, error) { return harness.E8CoordinateWise(*seed) },
		"e9": func() (*harness.Table, error) { return harness.E9WitnessAblation(*seed) },
		"f1": harness.F1Heptagon,
		"f2": func() (*harness.Table, error) { return harness.F2ConvergenceSeries(*seed) },
	}

	name := strings.ToLower(*experiment)
	if name == "all" {
		tables, err := harness.All(*seed)
		if err != nil {
			return err
		}
		allPass := true
		for _, tbl := range tables {
			if err := tbl.Render(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
			if !tbl.Pass {
				allPass = false
			}
		}
		if !allPass {
			return fmt.Errorf("one or more experiments failed")
		}
		return nil
	}

	r, ok := runners[name]
	if !ok {
		return fmt.Errorf("unknown experiment %q (want all, e1…e9, f1, f2)", *experiment)
	}
	tbl, err := r()
	if err != nil {
		return err
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}
	if !tbl.Pass {
		return fmt.Errorf("experiment %s failed", strings.ToUpper(name))
	}
	return nil
}
