package main

import "testing"

func TestRunAlgorithms(t *testing.T) {
	cases := [][]string{
		{"-algorithm", "exact", "-seed", "2"},
		{"-algorithm", "exact", "-adversary", "equivocate"},
		{"-algorithm", "coordwise", "-d", "1"},
		{"-algorithm", "approx", "-eps", "0.3", "-adversary", "lure"},
		{"-algorithm", "approx", "-eps", "0.3", "-witness"},
		{"-algorithm", "rsync", "-eps", "0.3", "-adversary", "silent"},
		{"-algorithm", "rasync", "-d", "1", "-eps", "0.3"},
	}
	for _, args := range cases {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-algorithm", "bogus"},
		{"-algorithm", "exact", "-adversary", "bogus"},
		{"-algorithm", "exact", "-n", "2"}, // below the bound
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v): expected error", args)
		}
	}
}
