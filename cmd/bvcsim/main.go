// Command bvcsim runs one Byzantine vector consensus execution on the
// deterministic simulator and reports every process's decision plus the
// verification verdicts.
//
// Usage:
//
//	bvcsim -algorithm exact -n 5 -f 1 -d 2 -adversary equivocate -seed 3
//	bvcsim -algorithm approx -n 5 -f 1 -d 2 -eps 0.05 -adversary lure
//	bvcsim -algorithm rsync | rasync | coordwise ...
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bvcsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bvcsim", flag.ContinueOnError)
	var (
		algorithm = fs.String("algorithm", "exact", "exact | coordwise | approx | rsync | rasync")
		n         = fs.Int("n", 0, "process count (0 = paper's tight bound)")
		f         = fs.Int("f", 1, "Byzantine fault bound")
		d         = fs.Int("d", 2, "vector dimension")
		eps       = fs.Float64("eps", 0.05, "ε-agreement parameter (approximate variants)")
		adv       = fs.String("adversary", "none", "none | silent | crash | equivocate | random | lure")
		seed      = fs.Int64("seed", 1, "random seed (inputs, schedule, adversary)")
		witness   = fs.Bool("witness", false, "use the Appendix-F witness optimization (approx)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	variant := map[string]bvc.Variant{
		"exact":     bvc.ExactSync,
		"coordwise": bvc.ExactSync,
		"approx":    bvc.ApproxAsync,
		"rsync":     bvc.RestrictedSync,
		"rasync":    bvc.RestrictedAsync,
	}[*algorithm]
	if variant == 0 {
		return fmt.Errorf("unknown algorithm %q", *algorithm)
	}
	if *n == 0 {
		*n = bvc.MinProcesses(variant, *d, *f)
	}
	cfg := bvc.Config{
		N: *n, F: *f, D: *d,
		Epsilon:             *eps,
		Lo:                  []float64{0},
		Hi:                  []float64{1},
		WitnessOptimization: *witness,
	}

	rng := rand.New(rand.NewSource(*seed))
	inputs := make([]bvc.Vector, cfg.N)
	for i := range inputs {
		v := make(bvc.Vector, cfg.D)
		for j := range v {
			v[j] = rng.Float64()
		}
		inputs[i] = v
	}

	var byz []bvc.Byzantine
	if *adv != "none" {
		one := make(bvc.Vector, cfg.D)
		zero := make(bvc.Vector, cfg.D)
		for i := range one {
			one[i] = 1
		}
		strategy := map[string]bvc.Strategy{
			"silent":     bvc.StrategySilent,
			"crash":      bvc.StrategyCrash,
			"equivocate": bvc.StrategyEquivocate,
			"random":     bvc.StrategyRandom,
			"lure":       bvc.StrategyLure,
		}[*adv]
		if strategy == 0 {
			return fmt.Errorf("unknown adversary %q", *adv)
		}
		byz = append(byz, bvc.Byzantine{
			ID: cfg.N - 1, Strategy: strategy,
			Target: one, Target2: zero, CrashAfter: 1,
		})
		inputs[cfg.N-1] = nil
	}

	opts := bvc.SimOptions{
		Seed:  *seed,
		Delay: bvc.DelaySpec{Kind: bvc.DelayUniform, Min: time.Millisecond, Max: 15 * time.Millisecond},
	}

	var (
		res *bvc.Result
		err error
	)
	switch *algorithm {
	case "exact":
		res, err = bvc.SimulateExact(cfg, inputs, byz, opts)
	case "coordwise":
		res, err = bvc.SimulateCoordinateWise(cfg, inputs, byz, opts)
	case "approx":
		res, err = bvc.SimulateApproxAsync(cfg, inputs, byz, opts)
	case "rsync":
		res, err = bvc.SimulateRestrictedSync(cfg, inputs, byz, opts)
	case "rasync":
		res, err = bvc.SimulateRestrictedAsync(cfg, inputs, byz, opts)
	}
	if err != nil {
		return err
	}

	fmt.Printf("algorithm=%s n=%d f=%d d=%d adversary=%s seed=%d\n",
		*algorithm, cfg.N, cfg.F, cfg.D, *adv, *seed)
	fmt.Printf("messages=%d", res.Messages)
	if res.VirtualTime > 0 {
		fmt.Printf(" virtual-time=%v", res.VirtualTime)
	}
	fmt.Println()
	for _, p := range res.Processes {
		if p.Byzantine {
			fmt.Printf("  p%-2d BYZANTINE (%s)\n", p.ID+1, *adv)
			continue
		}
		fmt.Printf("  p%-2d input=%.4f decision=%.4f rounds=%d\n", p.ID+1, p.Input, p.Decision, p.Rounds)
	}

	switch *algorithm {
	case "exact":
		report("agreement+validity (Exact BVC)", res.VerifyExact())
	case "coordwise":
		report("agreement", res.VerifyExact())
		report("vector validity", res.VerifyValidity())
	default:
		report(fmt.Sprintf("ε-agreement (ε=%g)+validity", cfg.Epsilon), res.VerifyApprox())
	}
	return nil
}

func report(name string, err error) {
	if err != nil {
		fmt.Printf("verify %-40s VIOLATED: %v\n", name, err)
		return
	}
	fmt.Printf("verify %-40s ok\n", name)
}
