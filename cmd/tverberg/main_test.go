package main

import "testing"

func TestRunFigure1(t *testing.T) {
	if err := run([]string{"-figure1"}); err != nil {
		t.Errorf("figure1: %v", err)
	}
}

func TestRunExplicitPoints(t *testing.T) {
	// Square: Radon case, d=2, two blocks.
	if err := run([]string{"-parts", "2", "0,0", "1,1", "1,0", "0,1"}); err != nil {
		t.Errorf("square: %v", err)
	}
	// No partition exists: 3 generic points, 3 parts.
	if err := run([]string{"-parts", "3", "0,0", "1,0", "0,1"}); err != nil {
		t.Errorf("unpartitionable input should not error: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no points: expected error")
	}
	if err := run([]string{"not-a-point"}); err == nil {
		t.Error("bad point: expected error")
	}
}

func TestParsePoint(t *testing.T) {
	p, err := parsePoint(" 1.5, -2 ,3")
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 3 || p[0] != 1.5 || p[1] != -2 || p[2] != 3 {
		t.Errorf("parsed %v", p)
	}
}

func TestFmtVec(t *testing.T) {
	if got := fmtVec([]float64{1, 2.5}); got != "(1.000, 2.500)" {
		t.Errorf("fmtVec = %q", got)
	}
}
