// Command tverberg computes Tverberg partitions: given points (or the
// paper's Figure-1 heptagon), it partitions them into blocks whose convex
// hulls share a common point, and prints the partition and the point.
//
// Usage:
//
//	tverberg -figure1                 # the paper's heptagon illustration
//	tverberg -parts 2 "0,0" "1,1" "1,0" "0,1"
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"repro"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tverberg:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tverberg", flag.ContinueOnError)
	figure1 := fs.Bool("figure1", false, "reproduce the paper's Figure 1 (regular heptagon, 3 parts)")
	parts := fs.Int("parts", 2, "number of partition blocks (f+1)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var points []bvc.Vector
	if *figure1 {
		*parts = 3
		for k := 0; k < 7; k++ {
			a := 2 * math.Pi * float64(k) / 7
			points = append(points, bvc.Vector{math.Cos(a), math.Sin(a)})
		}
		fmt.Println("Figure 1: regular heptagon, n = 7 = (d+1)f+1 with d = 2, f = 2")
	} else {
		for _, arg := range fs.Args() {
			p, err := parsePoint(arg)
			if err != nil {
				return err
			}
			points = append(points, p)
		}
		if len(points) == 0 {
			return fmt.Errorf("no points given (or use -figure1)")
		}
	}

	blocks, point, found, err := bvc.TverbergPartition(points, *parts)
	if err != nil {
		return err
	}
	if !found {
		fmt.Printf("no Tverberg partition of %d points into %d parts exists\n", len(points), *parts)
		return nil
	}
	fmt.Printf("partition into %d parts:\n", *parts)
	for b, blk := range blocks {
		fmt.Printf("  block %d:", b+1)
		for _, idx := range blk {
			fmt.Printf("  p%d%v", idx+1, fmtVec(points[idx]))
		}
		fmt.Println()
	}
	fmt.Printf("Tverberg point: %v\n", fmtVec(point))
	for b, blk := range blocks {
		var hullPts []bvc.Vector
		for _, idx := range blk {
			hullPts = append(hullPts, points[idx])
		}
		in, err := bvc.InConvexHull(hullPts, point)
		if err != nil {
			return err
		}
		fmt.Printf("  in hull of block %d: %v\n", b+1, in)
	}
	return nil
}

func parsePoint(s string) (bvc.Vector, error) {
	fields := strings.Split(s, ",")
	out := make(bvc.Vector, 0, len(fields))
	for _, fstr := range fields {
		x, err := strconv.ParseFloat(strings.TrimSpace(fstr), 64)
		if err != nil {
			return nil, fmt.Errorf("bad point %q: %w", s, err)
		}
		out = append(out, x)
	}
	return out, nil
}

func fmtVec(v bvc.Vector) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = strconv.FormatFloat(x, 'f', 3, 64)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
