package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mergeFiles(t *testing.T, outPath string, inputs ...string) (stdout, stderr string) {
	t.Helper()
	var so, se strings.Builder
	args := []string{}
	if outPath != "" {
		args = append(args, "-out", outPath)
	}
	args = append(args, inputs...)
	if err := runMerge(args, &so, &se); err != nil {
		t.Fatalf("merge: %v\n%s", err, se.String())
	}
	return so.String(), se.String()
}

// TestMergeGolden pins the full merge behaviour against committed shard
// fixtures: calibration reconciliation (slowbox's calibrate is 2× the
// reference, so its records halve), last-wins retry handling within a
// shard file, metadata preservation (host, gomaxprocs, unit payload) and
// the calib_scale stamp.
func TestMergeGolden(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "merged.jsonl")
	mergeFiles(t, outPath,
		filepath.Join("testdata", "shard_a.jsonl"),
		filepath.Join("testdata", "shard_b.jsonl"))
	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "merged_golden.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("merged output diverges from testdata/merged_golden.jsonl\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestMergeStdoutStaysCleanJSONL: with -out unset the records stream to
// stdout and every diagnostic (including warnings) goes to stderr, so
// `benchdiff merge shard-*.jsonl > merged.json` always produces a
// parseable trajectory.
func TestMergeStdoutStaysCleanJSONL(t *testing.T) {
	dir := t.TempDir()
	bare := write(t, dir, "bare.jsonl", `{"benchmark":"e9","ns_per_op":5000,"pass":true}
`)
	stdout, stderr := mergeFiles(t, "",
		filepath.Join("testdata", "shard_a.jsonl"), bare)
	if !strings.Contains(stderr, "no \"calibrate\" record") {
		t.Errorf("warning missing from stderr:\n%s", stderr)
	}
	for _, line := range strings.Split(strings.TrimSpace(stdout), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("stdout line is not JSON: %q: %v", line, err)
		}
	}
}

// TestMergeNormalizesNsPerOp spells out the arithmetic the golden file
// encodes: a record measured on hardware whose calibration is 2× the
// reference merges at half its raw ns/op, and fields merge does not
// interpret pass through unchanged.
func TestMergeNormalizesNsPerOp(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "merged.jsonl")
	mergeFiles(t, outPath,
		filepath.Join("testdata", "shard_a.jsonl"),
		filepath.Join("testdata", "shard_b.jsonl"))
	recs := readMerged(t, outPath)
	if got := num(t, recs["e2"]["ns_per_op"]); got != 200000 {
		t.Errorf("e2 ns/op = %g, want 200000 (400000 raw × 0.5 calibration scale)", got)
	}
	if got := num(t, recs["e2"]["calib_scale"]); got != 0.5 {
		t.Errorf("e2 calib_scale = %g, want 0.5", got)
	}
	if got := num(t, recs["e1"]["ns_per_op"]); got != 100000 {
		t.Errorf("e1 ns/op = %g, want 100000 (reference shard, unscaled)", got)
	}
	if recs["e2"]["host"] != "slowbox" || num(t, recs["e2"]["gomaxprocs"]) != 2 {
		t.Errorf("e2 provenance not preserved: %v", recs["e2"])
	}
	if rec, ok := recs["sweep/rsync/n5d2f1/none/none/s1"]; !ok || rec["pass"] != true {
		t.Errorf("retried record should keep the later, passing measurement: %+v", rec)
	} else if got := num(t, rec["ns_per_op"]); got != 40000 {
		t.Errorf("retried record ns/op = %g, want 40000 (80000 raw × 0.5)", got)
	}
	if recs["sweep/exact/n4d2f1/none/none/s1"]["unit"] == nil {
		t.Errorf("unit payload dropped by merge")
	}
}

// TestMergePreservesUnknownFields: the worker record schema is
// forward-extensible — a field merge has never heard of must survive
// into the merged trajectory.
func TestMergePreservesUnknownFields(t *testing.T) {
	dir := t.TempDir()
	shard := write(t, dir, "future.jsonl", `{"benchmark":"calibrate","ns_per_op":1000,"pass":true}
{"benchmark":"e1","ns_per_op":2000,"pass":true,"repetitions":5,"recorded_at":"2026-07-29T00:00:00Z"}
`)
	outPath := filepath.Join(dir, "merged.jsonl")
	mergeFiles(t, outPath, shard)
	recs := readMerged(t, outPath)
	if got := num(t, recs["e1"]["repetitions"]); got != 5 {
		t.Errorf("unknown numeric field dropped or mangled: %v", recs["e1"])
	}
	if recs["e1"]["recorded_at"] != "2026-07-29T00:00:00Z" {
		t.Errorf("unknown string field dropped: %v", recs["e1"])
	}
}

// TestMergeThenCompare closes the loop the sweep workflow relies on: a
// merged shard trajectory must be accepted by the plain benchdiff compare
// mode against a baseline that covers its experiment records, with the
// sweep-only records surfacing as NEW rather than failing.
func TestMergeThenCompare(t *testing.T) {
	dir := t.TempDir()
	merged := filepath.Join(dir, "merged.jsonl")
	mergeFiles(t, merged,
		filepath.Join("testdata", "shard_a.jsonl"),
		filepath.Join("testdata", "shard_b.jsonl"))
	base := write(t, dir, "base.json", `{"benchmark":"calibrate","ns_per_op":1000,"pass":true}
{"benchmark":"e1","ns_per_op":100000,"pass":true}
{"benchmark":"e2","ns_per_op":190000,"pass":true}
`)
	var sb strings.Builder
	if err := run([]string{"-baseline", base, "-candidate", merged}, &sb); err != nil {
		t.Fatalf("compare rejected merged trajectory: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "NEW") {
		t.Errorf("sweep-only records should report as NEW:\n%s", sb.String())
	}
}

// TestMergeWithoutCalibration still merges, unscaled, with a warning on
// stderr.
func TestMergeWithoutCalibration(t *testing.T) {
	dir := t.TempDir()
	shard := write(t, dir, "bare.jsonl", `{"benchmark":"e9","ns_per_op":5000,"pass":true}
`)
	outPath := filepath.Join(dir, "merged.jsonl")
	_, stderr := mergeFiles(t, outPath, shard)
	if !strings.Contains(stderr, "no \"calibrate\" record") {
		t.Errorf("expected missing-calibration warning, got:\n%s", stderr)
	}
	recs := readMerged(t, outPath)
	if got := num(t, recs["e9"]["ns_per_op"]); got != 5000 {
		t.Errorf("uncalibrated record rescaled: ns/op = %g, want 5000", got)
	}
}

// TestMergeDuplicateAcrossShards keeps the later record and warns — the
// situation arises only when shard files from different assignments are
// mixed, which the bvcsweep manifest refuses, but merge must stay total.
func TestMergeDuplicateAcrossShards(t *testing.T) {
	dir := t.TempDir()
	a := write(t, dir, "a.jsonl", `{"benchmark":"calibrate","ns_per_op":1000,"pass":true}
{"benchmark":"e5","ns_per_op":100,"pass":true}
`)
	b := write(t, dir, "b.jsonl", `{"benchmark":"calibrate","ns_per_op":1000,"pass":true}
{"benchmark":"e5","ns_per_op":300,"pass":true}
`)
	outPath := filepath.Join(dir, "merged.jsonl")
	_, stderr := mergeFiles(t, outPath, a, b)
	if !strings.Contains(stderr, "duplicate record") {
		t.Errorf("expected duplicate warning, got:\n%s", stderr)
	}
	if got := num(t, readMerged(t, outPath)["e5"]["ns_per_op"]); got != 300 {
		t.Errorf("duplicate resolution kept ns/op %g, want 300 (later wins)", got)
	}
}

func TestMergeNoInputs(t *testing.T) {
	var so, se strings.Builder
	if err := runMerge(nil, &so, &se); err == nil {
		t.Fatal("expected an error for merge without shard files")
	}
}

func readMerged(t *testing.T, path string) map[string]map[string]any {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]map[string]any)
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("%s: %v", line, err)
		}
		name, _ := rec["benchmark"].(string)
		out[name] = rec
	}
	return out
}

func num(t *testing.T, v any) float64 {
	t.Helper()
	f, ok := v.(float64)
	if !ok {
		t.Fatalf("value %v (%T) is not a number", v, v)
	}
	return f
}
