// Command benchdiff compares two bvcbench -json trajectory files and fails
// when any shared benchmark regressed beyond the threshold — the CI gate
// that keeps the BENCH_*.json performance trajectory monotone. Its merge
// subcommand joins cmd/bvcsweep shard files into one gateable trajectory.
//
// Usage:
//
//	benchdiff -baseline BENCH_baseline.json -candidate BENCH_pr.json
//	benchdiff ... -threshold 0.25       # fail on >25% ns/op regression
//	benchdiff ... -calibration ""       # disable hardware normalization
//	benchdiff merge -out merged.json sweepdir/shard-*.jsonl
//
// The files are JSON-lines records as emitted by `bvcbench -json` or by
// cmd/bvcsweep workers; the record schema (including the calibration
// semantics, hardware-normalization rules and the shard-merge fields) is
// documented in docs/BENCH_FORMAT.md. Records named by -calibration
// (default "calibrate") measure a fixed CPU workload; when both files
// carry one, every per-benchmark ratio is divided by the calibration
// ratio, so a baseline recorded on a fast laptop compares fairly against
// a candidate recorded on a slow CI runner and vice versa.
//
// `benchdiff merge` reconciles the per-shard calibration records of a
// sweep — every shard's ns/op is rescaled into the reference (first)
// shard's hardware units, host and GOMAXPROCS metadata are preserved per
// record — and emits a single trajectory that this command's compare mode
// accepts against a committed baseline.
//
// Exit status is non-zero when any benchmark regresses beyond the
// threshold, a baseline benchmark is missing from the candidate, or a
// candidate record reports pass=false.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

func main() {
	args := os.Args[1:]
	var err error
	switch {
	case len(args) > 0 && args[0] == "merge":
		err = runMerge(args[1:], os.Stdout, os.Stderr)
	case len(args) > 0 && args[0] == "reuse":
		err = runReuse(args[1:], os.Stdout)
	default:
		err = run(args, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

// record mirrors cmd/bvcbench's benchRecord (kept separate so the two
// commands stay independently buildable).
type record struct {
	Benchmark   string  `json:"benchmark"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Pass        bool    `json:"pass"`
	Seconds     float64 `json:"seconds"`
	GoMaxProcs  int     `json:"gomaxprocs"`

	// Γ-engine reuse counters (docs/BENCH_FORMAT.md); consumed by the
	// `benchdiff reuse` report and gate.
	GammaSolves     int64   `json:"gamma_solves"`
	GammaCacheHits  int64   `json:"gamma_cache_hits"`
	GammaPrefixHits int64   `json:"gamma_prefix_hits"`
	GammaRoundHits  int64   `json:"gamma_round_hits"`
	GammaReuseRate  float64 `json:"gamma_reuse_rate"`
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: benchdiff [flags]                      compare a candidate trajectory against a baseline")
		fmt.Fprintln(fs.Output(), "       benchdiff merge [flags] shard.jsonl…  join bvcsweep shard files into one trajectory")
		fmt.Fprintln(fs.Output(), "record schema, calibration semantics and shard-merge rules: docs/BENCH_FORMAT.md")
		fs.PrintDefaults()
	}
	baselinePath := fs.String("baseline", "BENCH_baseline.json", "committed trajectory file")
	candidatePath := fs.String("candidate", "BENCH_pr.json", "freshly measured trajectory file")
	threshold := fs.Float64("threshold", 0.25, "maximum tolerated fractional ns/op regression")
	calibration := fs.String("calibration", "calibrate", "benchmark name used to normalize hardware speed (empty disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *threshold <= 0 {
		return fmt.Errorf("invalid threshold %g", *threshold)
	}
	base, err := readRecords(*baselinePath)
	if err != nil {
		return err
	}
	cand, err := readRecords(*candidatePath)
	if err != nil {
		return err
	}
	if len(base) == 0 {
		return fmt.Errorf("%s holds no records", *baselinePath)
	}

	// Hardware normalization from the calibration pair. The calibration
	// workload is single-threaded, so the scale captures per-core speed
	// only; a core-count mismatch between the two machines shifts the
	// parallel experiments independently of code changes — surface it.
	// Allocation counts get their own scale from the calibration record's
	// allocs/op: allocation behavior is essentially hardware-independent,
	// so the scale is ~1 unless the runtime or measurement protocol
	// changed between the recordings — which is exactly the delta it
	// absorbs. The ratio is only meaningful when the calibration's own
	// count is large enough that ±1-alloc jitter cannot move it by the
	// gate threshold (the fixed kernel allocates a handful per op, where a
	// single-alloc wobble is a 25–33% ratio swing); below the floor the
	// scale stays 1.
	const minCalibAllocs = 64 // ±1 alloc shifts the ratio < 1.6%, ≪ the 25% gate
	scale := 1.0
	allocScale := 1.0
	if *calibration != "" {
		b, bok := base[*calibration]
		c, cok := cand[*calibration]
		if bok && cok && b.NsPerOp > 0 {
			scale = float64(c.NsPerOp) / float64(b.NsPerOp)
			fmt.Fprintf(w, "calibration: %s %d → %d ns/op (hardware scale ×%.3f)\n",
				*calibration, b.NsPerOp, c.NsPerOp, scale)
			if b.AllocsPerOp >= minCalibAllocs && c.AllocsPerOp >= minCalibAllocs {
				allocScale = float64(c.AllocsPerOp) / float64(b.AllocsPerOp)
			}
			if b.GoMaxProcs > 0 && c.GoMaxProcs > 0 && b.GoMaxProcs != c.GoMaxProcs {
				fmt.Fprintf(w, "warning: GOMAXPROCS %d (baseline) vs %d (candidate); parallel benchmarks shift by the core-count ratio on top of any code change\n",
					b.GoMaxProcs, c.GoMaxProcs)
			}
		} else {
			fmt.Fprintf(w, "calibration: %q missing on one side; comparing raw ns/op\n", *calibration)
		}
	}

	names := make([]string, 0, len(base))
	for name := range base {
		if name != *calibration {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	var failures []string
	fmt.Fprintf(w, "%-24s %14s %14s %9s %11s\n", "benchmark", "baseline ns/op", "candidate ns/op", "delta", "allocs Δ")
	for _, name := range names {
		b := base[name]
		c, ok := cand[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: present in baseline, missing from candidate (regenerate the baseline if it was removed on purpose)", name))
			fmt.Fprintf(w, "%-24s %14d %14s %9s %11s\n", name, b.NsPerOp, "-", "MISSING", "-")
			continue
		}
		if !c.Pass {
			failures = append(failures, fmt.Sprintf("%s: candidate record reports pass=false", name))
		}
		// Allocation gate: same threshold, calibration-normalized. Records
		// without allocation instrumentation on either side (single-run
		// grid cells report 0) are not gated.
		allocVerdict := "-"
		if b.AllocsPerOp > 0 && c.AllocsPerOp > 0 {
			allocDelta := float64(c.AllocsPerOp)/(float64(b.AllocsPerOp)*allocScale) - 1
			allocVerdict = fmt.Sprintf("%+.1f%%", allocDelta*100)
			if allocDelta > *threshold {
				allocVerdict += "!"
				failures = append(failures, fmt.Sprintf("%s: allocs/op %.1f%% above baseline (threshold %.0f%%)",
					name, allocDelta*100, *threshold*100))
			}
		}
		if b.NsPerOp <= 0 {
			fmt.Fprintf(w, "%-24s %14d %14d %9s %11s\n", name, b.NsPerOp, c.NsPerOp, "SKIP", allocVerdict)
			continue
		}
		delta := float64(c.NsPerOp)/(float64(b.NsPerOp)*scale) - 1
		verdict := fmt.Sprintf("%+.1f%%", delta*100)
		if delta > *threshold {
			verdict += " REGRESSION"
			failures = append(failures, fmt.Sprintf("%s: %.1f%% slower than baseline (threshold %.0f%%)",
				name, delta*100, *threshold*100))
		}
		fmt.Fprintf(w, "%-24s %14d %14d %9s %11s\n", name, b.NsPerOp, c.NsPerOp, verdict, allocVerdict)
	}
	for name := range cand {
		if name == *calibration {
			continue
		}
		if _, ok := base[name]; !ok {
			fmt.Fprintf(w, "%-24s %14s %14d %9s %11s\n", name, "-", cand[name].NsPerOp, "NEW", "-")
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d failure(s):\n  %s", len(failures), strings.Join(failures, "\n  "))
	}
	fmt.Fprintf(w, "no regressions beyond %.0f%%\n", *threshold*100)
	return nil
}

// readRecords parses a JSON-lines trajectory file into a by-name map; a
// repeated name keeps the last record, matching "latest measurement wins".
func readRecords(path string) (map[string]record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]record)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec record
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		if rec.Benchmark == "" {
			return nil, fmt.Errorf("%s:%d: record without benchmark name", path, line)
		}
		out[rec.Benchmark] = rec
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}
