package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baseline = `{"benchmark":"calibrate","ns_per_op":1000,"pass":true}
{"benchmark":"e1","ns_per_op":100000,"pass":true}
{"benchmark":"e2","ns_per_op":200000,"pass":true}
`

func TestNoRegression(t *testing.T) {
	dir := t.TempDir()
	b := write(t, dir, "base.json", baseline)
	c := write(t, dir, "cand.json", `{"benchmark":"calibrate","ns_per_op":1000,"pass":true}
{"benchmark":"e1","ns_per_op":110000,"pass":true}
{"benchmark":"e2","ns_per_op":150000,"pass":true}
`)
	var sb strings.Builder
	if err := run([]string{"-baseline", b, "-candidate", c}, &sb); err != nil {
		t.Fatalf("unexpected failure: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "no regressions") {
		t.Errorf("missing success line:\n%s", sb.String())
	}
}

func TestRegressionFails(t *testing.T) {
	dir := t.TempDir()
	b := write(t, dir, "base.json", baseline)
	c := write(t, dir, "cand.json", `{"benchmark":"calibrate","ns_per_op":1000,"pass":true}
{"benchmark":"e1","ns_per_op":140000,"pass":true}
{"benchmark":"e2","ns_per_op":200000,"pass":true}
`)
	var sb strings.Builder
	err := run([]string{"-baseline", b, "-candidate", c}, &sb)
	if err == nil || !strings.Contains(err.Error(), "e1") {
		t.Fatalf("expected e1 regression failure, got %v\n%s", err, sb.String())
	}
}

// TestCalibrationNormalizes: a uniformly slower machine (every record 2×,
// including the calibration workload) must NOT count as a regression, and a
// genuinely slower benchmark must still fail after normalization.
func TestCalibrationNormalizes(t *testing.T) {
	dir := t.TempDir()
	b := write(t, dir, "base.json", baseline)
	slow := write(t, dir, "slow.json", `{"benchmark":"calibrate","ns_per_op":2000,"pass":true}
{"benchmark":"e1","ns_per_op":200000,"pass":true}
{"benchmark":"e2","ns_per_op":400000,"pass":true}
`)
	var sb strings.Builder
	if err := run([]string{"-baseline", b, "-candidate", slow}, &sb); err != nil {
		t.Fatalf("uniform slowdown flagged as regression: %v\n%s", err, sb.String())
	}
	bad := write(t, dir, "bad.json", `{"benchmark":"calibrate","ns_per_op":2000,"pass":true}
{"benchmark":"e1","ns_per_op":600000,"pass":true}
{"benchmark":"e2","ns_per_op":400000,"pass":true}
`)
	sb.Reset()
	err := run([]string{"-baseline", b, "-candidate", bad}, &sb)
	if err == nil || !strings.Contains(err.Error(), "e1") {
		t.Fatalf("expected normalized e1 regression, got %v\n%s", err, sb.String())
	}
}

func TestMissingBenchmarkFails(t *testing.T) {
	dir := t.TempDir()
	b := write(t, dir, "base.json", baseline)
	c := write(t, dir, "cand.json", `{"benchmark":"calibrate","ns_per_op":1000,"pass":true}
{"benchmark":"e1","ns_per_op":100000,"pass":true}
`)
	var sb strings.Builder
	err := run([]string{"-baseline", b, "-candidate", c}, &sb)
	if err == nil || !strings.Contains(err.Error(), "e2") {
		t.Fatalf("expected missing-e2 failure, got %v", err)
	}
}

func TestFailedRecordFails(t *testing.T) {
	dir := t.TempDir()
	b := write(t, dir, "base.json", baseline)
	c := write(t, dir, "cand.json", `{"benchmark":"calibrate","ns_per_op":1000,"pass":true}
{"benchmark":"e1","ns_per_op":100000,"pass":false}
{"benchmark":"e2","ns_per_op":200000,"pass":true}
`)
	var sb strings.Builder
	err := run([]string{"-baseline", b, "-candidate", c}, &sb)
	if err == nil || !strings.Contains(err.Error(), "pass=false") {
		t.Fatalf("expected pass=false failure, got %v", err)
	}
}

func TestNewBenchmarkInformational(t *testing.T) {
	dir := t.TempDir()
	b := write(t, dir, "base.json", baseline)
	c := write(t, dir, "cand.json", `{"benchmark":"calibrate","ns_per_op":1000,"pass":true}
{"benchmark":"e1","ns_per_op":100000,"pass":true}
{"benchmark":"e2","ns_per_op":200000,"pass":true}
{"benchmark":"e11","ns_per_op":900000,"pass":true}
`)
	var sb strings.Builder
	if err := run([]string{"-baseline", b, "-candidate", c}, &sb); err != nil {
		t.Fatalf("new benchmark must not fail the gate: %v", err)
	}
	if !strings.Contains(sb.String(), "NEW") {
		t.Errorf("new benchmark not reported:\n%s", sb.String())
	}
}

func TestMalformedInput(t *testing.T) {
	dir := t.TempDir()
	b := write(t, dir, "base.json", "not json\n")
	c := write(t, dir, "cand.json", baseline)
	var sb strings.Builder
	if err := run([]string{"-baseline", b, "-candidate", c}, &sb); err == nil {
		t.Fatal("malformed baseline accepted")
	}
	if err := run([]string{"-baseline", filepath.Join(dir, "missing.json"), "-candidate", c}, &sb); err == nil {
		t.Fatal("missing baseline accepted")
	}
}

func TestCoreCountMismatchWarns(t *testing.T) {
	dir := t.TempDir()
	b := write(t, dir, "base.json", `{"benchmark":"calibrate","ns_per_op":1000,"pass":true,"gomaxprocs":1}
{"benchmark":"e1","ns_per_op":100000,"pass":true,"gomaxprocs":1}
`)
	c := write(t, dir, "cand.json", `{"benchmark":"calibrate","ns_per_op":1000,"pass":true,"gomaxprocs":4}
{"benchmark":"e1","ns_per_op":100000,"pass":true,"gomaxprocs":4}
`)
	var sb strings.Builder
	if err := run([]string{"-baseline", b, "-candidate", c}, &sb); err != nil {
		t.Fatalf("core-count mismatch must warn, not fail: %v", err)
	}
	if !strings.Contains(sb.String(), "GOMAXPROCS 1 (baseline) vs 4") {
		t.Errorf("missing core-count warning:\n%s", sb.String())
	}
}
