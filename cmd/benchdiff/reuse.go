package main

import (
	"flag"
	"fmt"
	"io"
	"sort"
	"strings"
)

// runReuse implements `benchdiff reuse`: a benchstat-style summary of the
// Γ-engine reuse counters carried by a BENCH trajectory (gamma_solves,
// gamma_cache_hits, gamma_prefix_hits, gamma_round_hits, gamma_reuse_rate —
// see docs/BENCH_FORMAT.md). CI uploads the summary as a build artifact.
//
// With -require <prefix>[,<prefix>…], every record whose name starts with a
// listed prefix must show a nonzero reuse counter (cache, prefix or round
// hits); an all-zero record fails the command. This is the guard against the
// incremental Γ path silently regressing to from-scratch solves: the e10
// rows always re-solve identical candidate sets across processes, so a zero
// counter there means the memo keys stopped matching, not that there was
// nothing to reuse.
func runReuse(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("benchdiff reuse", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: benchdiff reuse [flags] trajectory.json")
		fmt.Fprintln(fs.Output(), "counter semantics: docs/BENCH_FORMAT.md")
		fs.PrintDefaults()
	}
	require := fs.String("require", "", "comma-separated record-name prefixes that must show nonzero Γ reuse")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("reuse: exactly one trajectory file expected, got %d", fs.NArg())
	}
	recs, err := readRecords(fs.Arg(0))
	if err != nil {
		return err
	}

	names := make([]string, 0, len(recs))
	for name := range recs {
		names = append(names, name)
	}
	sort.Strings(names)

	var prefixes []string
	for _, p := range strings.Split(*require, ",") {
		if p = strings.TrimSpace(p); p != "" {
			prefixes = append(prefixes, p)
		}
	}

	var failures []string
	matched := make(map[string]bool)
	fmt.Fprintf(w, "%-24s %12s %12s %12s %12s %8s\n",
		"benchmark", "solves/op", "cache hits", "prefix hits", "round hits", "reuse")
	for _, name := range names {
		r := recs[name]
		reused := r.GammaCacheHits + r.GammaPrefixHits + r.GammaRoundHits
		if r.GammaSolves == 0 && reused == 0 {
			continue // Γ-free record (calibrate, closed-form experiments)
		}
		fmt.Fprintf(w, "%-24s %12d %12d %12d %12d %7.1f%%\n",
			name, r.GammaSolves, r.GammaCacheHits, r.GammaPrefixHits, r.GammaRoundHits,
			r.GammaReuseRate*100)
		for _, p := range prefixes {
			if strings.HasPrefix(name, p) {
				matched[p] = true
				if reused == 0 {
					failures = append(failures, fmt.Sprintf(
						"%s: incremental Γ path shows zero reuse (cache/prefix/round hits all 0) — the fast path regressed to from-scratch solves", name))
				}
			}
		}
	}
	for _, p := range prefixes {
		if !matched[p] {
			failures = append(failures, fmt.Sprintf("required prefix %q matches no record with Γ activity", p))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d reuse failure(s):\n  %s", len(failures), strings.Join(failures, "\n  "))
	}
	return nil
}
