package main

import (
	"strings"
	"testing"
)

// TestAllocGate: an allocs/op blow-up beyond the threshold must fail even
// when ns/op is fine, and the calibration allocs ratio must normalize
// protocol-level shifts.
func TestAllocGate(t *testing.T) {
	dir := t.TempDir()
	b := write(t, dir, "base.json", `{"benchmark":"calibrate","ns_per_op":1000,"allocs_per_op":3,"pass":true}
{"benchmark":"e1","ns_per_op":100000,"allocs_per_op":1000,"pass":true}
`)
	c := write(t, dir, "cand.json", `{"benchmark":"calibrate","ns_per_op":1000,"allocs_per_op":3,"pass":true}
{"benchmark":"e1","ns_per_op":100000,"allocs_per_op":1500,"pass":true}
`)
	var sb strings.Builder
	err := run([]string{"-baseline", b, "-candidate", c}, &sb)
	if err == nil || !strings.Contains(err.Error(), "allocs/op") {
		t.Fatalf("expected allocs/op failure, got %v\n%s", err, sb.String())
	}

	// The same candidate passes when the calibration record carries the
	// same 1.5× allocs shift (a runtime/protocol change, not a code one) —
	// provided the calibration counts are large enough to normalize by.
	c2 := write(t, dir, "cand2.json", `{"benchmark":"calibrate","ns_per_op":1000,"allocs_per_op":1500,"pass":true}
{"benchmark":"e1","ns_per_op":100000,"allocs_per_op":1500,"pass":true}
`)
	b2 := write(t, dir, "base2.json", `{"benchmark":"calibrate","ns_per_op":1000,"allocs_per_op":1000,"pass":true}
{"benchmark":"e1","ns_per_op":100000,"allocs_per_op":1000,"pass":true}
`)
	sb.Reset()
	if err := run([]string{"-baseline", b2, "-candidate", c2}, &sb); err != nil {
		t.Fatalf("calibration-normalized allocs should pass: %v\n%s", err, sb.String())
	}

	// Tiny calibration counts must NOT normalize: a ±1 alloc wobble on a
	// 3-alloc kernel would swing the gate by 33%. Unchanged benchmark
	// allocs stay green even when the tiny calibrate count drifts 4 → 3.
	c3a := write(t, dir, "cand3a.json", `{"benchmark":"calibrate","ns_per_op":1000,"allocs_per_op":3,"pass":true}
{"benchmark":"e1","ns_per_op":100000,"allocs_per_op":1000,"pass":true}
`)
	b3a := write(t, dir, "base3a.json", `{"benchmark":"calibrate","ns_per_op":1000,"allocs_per_op":4,"pass":true}
{"benchmark":"e1","ns_per_op":100000,"allocs_per_op":1000,"pass":true}
`)
	sb.Reset()
	if err := run([]string{"-baseline", b3a, "-candidate", c3a}, &sb); err != nil {
		t.Fatalf("tiny calibrate alloc jitter must not fail unchanged allocs: %v\n%s", err, sb.String())
	}

	// Records without allocation instrumentation (grid cells report 0)
	// are not gated.
	b3 := write(t, dir, "base3.json", `{"benchmark":"cell","ns_per_op":1000,"allocs_per_op":0,"pass":true}`)
	c3 := write(t, dir, "cand3.json", `{"benchmark":"cell","ns_per_op":1000,"allocs_per_op":999999,"pass":true}`)
	sb.Reset()
	if err := run([]string{"-baseline", b3, "-candidate", c3, "-calibration", ""}, &sb); err != nil {
		t.Fatalf("uninstrumented records must not gate allocs: %v\n%s", err, sb.String())
	}
}

const reuseTrajectory = `{"benchmark":"calibrate","ns_per_op":1000,"pass":true}
{"benchmark":"e10","ns_per_op":1,"pass":true,"gamma_solves":100,"gamma_cache_hits":50,"gamma_prefix_hits":10,"gamma_round_hits":5,"gamma_reuse_rate":0.375}
{"benchmark":"e10/rsync-n15","ns_per_op":1,"pass":true,"gamma_solves":60,"gamma_cache_hits":0,"gamma_prefix_hits":40,"gamma_round_hits":9,"gamma_reuse_rate":0.4}
{"benchmark":"e4","ns_per_op":1,"pass":true,"gamma_solves":7}
`

// TestReuseSummary: the reuse report lists Γ-active records and passes when
// every required prefix shows nonzero reuse.
func TestReuseSummary(t *testing.T) {
	dir := t.TempDir()
	p := write(t, dir, "traj.json", reuseTrajectory)
	var sb strings.Builder
	if err := runReuse([]string{"-require", "e10", p}, &sb); err != nil {
		t.Fatalf("reuse gate should pass: %v\n%s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{"e10/rsync-n15", "37.5%", "e4"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "calibrate") {
		t.Errorf("Γ-free calibrate record should be omitted:\n%s", out)
	}
}

// TestReuseGateFailsOnZero: a required record with all-zero reuse counters
// (the incremental path silently regressed to from-scratch solves) fails.
func TestReuseGateFailsOnZero(t *testing.T) {
	dir := t.TempDir()
	p := write(t, dir, "traj.json", `{"benchmark":"e10","ns_per_op":1,"pass":true,"gamma_solves":100}
`)
	var sb strings.Builder
	err := runReuse([]string{"-require", "e10", p}, &sb)
	if err == nil || !strings.Contains(err.Error(), "zero reuse") {
		t.Fatalf("expected zero-reuse failure, got %v\n%s", err, sb.String())
	}

	// A prefix that matches nothing with Γ activity is also a failure (the
	// rows the gate guards must exist).
	err = runReuse([]string{"-require", "nope", p}, &sb)
	if err == nil || !strings.Contains(err.Error(), "matches no record") {
		t.Fatalf("expected unmatched-prefix failure, got %v", err)
	}
}
