package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// mergeRecord is one shard record as merge handles it: the few fields
// merge interprets (name, the gated ns/op, the calibration linkage),
// plus the full decoded object. Keeping the whole object — numbers as
// json.Number, so int64s survive — means fields merge does not know
// about (host, shard, the grid-cell unit payload, anything future
// workers add) pass through instead of being silently dropped. The
// full schema lives in docs/BENCH_FORMAT.md.
type mergeRecord struct {
	benchmark string
	nsPerOp   int64
	fields    map[string]any
}

// runMerge implements `benchdiff merge`: join bvcsweep shard files into
// one BENCH trajectory. Each shard leads with its own calibration record
// (measured on the shard's host, under the shard's contention); records
// from shard s are rescaled by calibration(reference)/calibration(s), so
// the merged file reads as if every record had been measured on the
// reference shard's hardware. The merged trajectory leads with the
// reference calibration record and is gateable with plain benchdiff
// against a committed baseline. All other record fields (host,
// gomaxprocs, unit payloads, …) pass through unchanged; the applied
// factor is stamped as "calib_scale". Records stream to -out (or stdout);
// diagnostics go to stderr.
func runMerge(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchdiff merge", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: benchdiff merge [flags] shard-*.jsonl")
		fmt.Fprintln(fs.Output(), "record schema and shard-merge rules: docs/BENCH_FORMAT.md")
		fs.PrintDefaults()
	}
	outPath := fs.String("out", "", "merged trajectory output file (default stdout)")
	calibration := fs.String("calibration", "calibrate", "benchmark name of the per-shard calibration record (empty disables reconciliation)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths := fs.Args()
	if len(paths) == 0 {
		return fmt.Errorf("merge: no shard files given (usage: benchdiff merge -out merged.json shard-*.jsonl)")
	}

	type shard struct {
		path    string
		records []mergeRecord // per-name last-wins, first-seen order
		calib   *mergeRecord
	}
	var shards []shard
	for _, path := range paths {
		recs, err := readMergeRecords(path)
		if err != nil {
			return err
		}
		s := shard{path: path, records: recs}
		if *calibration != "" {
			for i := range recs {
				if recs[i].benchmark == *calibration {
					s.calib = &recs[i]
				}
			}
			if s.calib == nil {
				fmt.Fprintf(stderr, "warning: %s carries no %q record; its records merge unscaled\n", path, *calibration)
			} else if s.calib.nsPerOp <= 0 {
				return fmt.Errorf("%s: calibration record has ns_per_op %d", path, s.calib.nsPerOp)
			}
		}
		shards = append(shards, s)
	}

	// The first shard with a calibration record is the reference: every
	// other shard's records are expressed in its hardware units.
	var ref *mergeRecord
	for i := range shards {
		if shards[i].calib != nil {
			ref = shards[i].calib
			break
		}
	}

	merged := make([]mergeRecord, 0, 64)
	index := make(map[string]int)
	emit := func(rec mergeRecord) {
		if i, ok := index[rec.benchmark]; ok {
			fmt.Fprintf(stderr, "warning: duplicate record %q; keeping the later one\n", rec.benchmark)
			merged[i] = rec
			return
		}
		index[rec.benchmark] = len(merged)
		merged = append(merged, rec)
	}
	if ref != nil {
		r := *ref
		r.fields = cloneFields(ref.fields)
		r.fields["calib_scale"] = 1.0
		emit(r)
	}
	for _, s := range shards {
		scale := 1.0
		if ref != nil && s.calib != nil {
			scale = float64(ref.nsPerOp) / float64(s.calib.nsPerOp)
		}
		for _, rec := range s.records {
			if rec.benchmark == *calibration && *calibration != "" {
				continue // reconciled into the single reference record
			}
			rec.fields = cloneFields(rec.fields)
			rec.fields["ns_per_op"] = int64(float64(rec.nsPerOp)*scale + 0.5)
			rec.fields["calib_scale"] = scale
			emit(rec)
		}
	}

	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	bw := bufio.NewWriter(out)
	for _, rec := range merged {
		line, err := marshalSorted(rec.fields)
		if err != nil {
			return err
		}
		if _, err := bw.Write(append(line, '\n')); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "merged %d record(s) from %d shard file(s)\n", len(merged), len(shards))
	return nil
}

func cloneFields(m map[string]any) map[string]any {
	out := make(map[string]any, len(m)+1)
	for k, v := range m {
		out[k] = v
	}
	return out
}

// marshalSorted encodes a record object with deterministic (sorted) key
// order and without HTML escaping, so merged trajectories are
// byte-stable inputs for golden tests and diffs.
func marshalSorted(m map[string]any) ([]byte, error) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		kj, err := json.Marshal(k)
		if err != nil {
			return nil, err
		}
		b.Write(kj)
		b.WriteByte(':')
		vj, err := json.Marshal(m[k])
		if err != nil {
			return nil, err
		}
		b.Write(vj)
	}
	b.WriteByte('}')
	return []byte(b.String()), nil
}

// readMergeRecords parses one shard file, applying per-name last-wins in
// first-seen order (a resumed sweep appends re-run records after failed
// ones; the retry is the valid measurement). Numbers are decoded as
// json.Number so untouched fields round-trip exactly.
func readMergeRecords(path string) ([]mergeRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var (
		out   []mergeRecord
		index = make(map[string]int)
	)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		dec := json.NewDecoder(strings.NewReader(text))
		dec.UseNumber()
		fields := make(map[string]any)
		if err := dec.Decode(&fields); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		rec := mergeRecord{fields: fields}
		if name, ok := fields["benchmark"].(string); ok {
			rec.benchmark = name
		}
		if rec.benchmark == "" {
			return nil, fmt.Errorf("%s:%d: record without benchmark name", path, line)
		}
		if ns, ok := fields["ns_per_op"].(json.Number); ok {
			if v, err := ns.Int64(); err == nil {
				rec.nsPerOp = v
			}
		}
		if i, ok := index[rec.benchmark]; ok {
			out[i] = rec
			continue
		}
		index[rec.benchmark] = len(out)
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}
