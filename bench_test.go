// Benchmarks: one per reproduced table/figure (E1–E9, F1; the README's
// experiment table summarizes each) plus micro-benchmarks for the ablations
// (Γ-point strategies, Zi construction, broadcast substrate).
//
// Run with: go test -bench=. -benchmem .
package bvc_test

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro"
	"repro/internal/harness"
)

// --- Experiment benchmarks (one per table / figure) ---

func BenchmarkE1SyncNecessity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := harness.E1SyncNecessity(int64(i))
		if err != nil || !tbl.Pass {
			b.Fatalf("pass=%v err=%v", tbl != nil && tbl.Pass, err)
		}
	}
}

func BenchmarkE2ExactSufficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := harness.E2ExactSufficiency(int64(i))
		if err != nil || !tbl.Pass {
			b.Fatalf("pass=%v err=%v", tbl != nil && tbl.Pass, err)
		}
	}
}

func BenchmarkE3TverbergLemma(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := harness.E3TverbergLemma(int64(i), 5)
		if err != nil || !tbl.Pass {
			b.Fatalf("pass=%v err=%v", tbl != nil && tbl.Pass, err)
		}
	}
}

func BenchmarkE4AsyncNecessity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := harness.E4AsyncNecessity()
		if err != nil || !tbl.Pass {
			b.Fatalf("pass=%v err=%v", tbl != nil && tbl.Pass, err)
		}
	}
}

func BenchmarkE5AsyncConvergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := harness.E5AsyncConvergence(int64(i))
		if err != nil || !tbl.Pass {
			b.Fatalf("pass=%v err=%v", tbl != nil && tbl.Pass, err)
		}
	}
}

func BenchmarkE6RestrictedSync(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := harness.E6RestrictedSync(int64(i))
		if err != nil || !tbl.Pass {
			b.Fatalf("pass=%v err=%v", tbl != nil && tbl.Pass, err)
		}
	}
}

func BenchmarkE7RestrictedAsync(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := harness.E7RestrictedAsync(int64(i))
		if err != nil || !tbl.Pass {
			b.Fatalf("pass=%v err=%v", tbl != nil && tbl.Pass, err)
		}
	}
}

func BenchmarkE8CoordinateWise(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := harness.E8CoordinateWise(int64(i))
		if err != nil || !tbl.Pass {
			b.Fatalf("pass=%v err=%v", tbl != nil && tbl.Pass, err)
		}
	}
}

func BenchmarkE9WitnessAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := harness.E9WitnessAblation(int64(i))
		if err != nil || !tbl.Pass {
			b.Fatalf("pass=%v err=%v", tbl != nil && tbl.Pass, err)
		}
	}
}

func BenchmarkF1Heptagon(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := harness.F1Heptagon()
		if err != nil || !tbl.Pass {
			b.Fatalf("pass=%v err=%v", tbl != nil && tbl.Pass, err)
		}
	}
}

// --- Protocol benchmarks across parameters ---

func benchInputs(n, d int, seed int64) []bvc.Vector {
	rng := rand.New(rand.NewSource(seed))
	out := make([]bvc.Vector, n)
	for i := range out {
		v := make(bvc.Vector, d)
		for j := range v {
			v[j] = rng.Float64()
		}
		out[i] = v
	}
	return out
}

func BenchmarkExactBVC(b *testing.B) {
	cases := []struct {
		name string
		d, f int
	}{
		{"d1f1", 1, 1},
		{"d2f1", 2, 1},
		{"d3f1", 3, 1},
		{"d2f2", 2, 2},
	}
	for _, c := range cases {
		n := bvc.MinProcesses(bvc.ExactSync, c.d, c.f)
		cfg := bvc.Config{N: n, F: c.f, D: c.d}
		b.Run(c.name, func(b *testing.B) {
			inputs := benchInputs(n, c.d, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := bvc.SimulateExact(cfg, inputs, nil, bvc.SimOptions{Seed: int64(i)})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Decisions()) != n {
					b.Fatal("missing decisions")
				}
			}
		})
	}
}

func BenchmarkApproxAsyncRound(b *testing.B) {
	// Cost per protocol execution with a small fixed round budget, full vs
	// witness-optimized Zi — the per-round cost side of the E9 ablation.
	for _, witness := range []struct {
		name string
		opt  bool
	}{{"fullZi", false}, {"witnessZi", true}} {
		b.Run(witness.name, func(b *testing.B) {
			cfg := bvc.Config{
				N: 7, F: 2, D: 1, Epsilon: 0.1,
				Lo: []float64{0}, Hi: []float64{1},
				WitnessOptimization: witness.opt,
				MaxRounds:           3,
			}
			inputs := benchInputs(cfg.N, cfg.D, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := bvc.SimulateApproxAsync(cfg, inputs, nil, bvc.SimOptions{Seed: int64(i)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkRestrictedSync(b *testing.B) {
	cfg := bvc.Config{N: 5, F: 1, D: 2, Epsilon: 0.3, Lo: []float64{0}, Hi: []float64{1}}
	inputs := benchInputs(cfg.N, cfg.D, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bvc.SimulateRestrictedSync(cfg, inputs, nil, bvc.SimOptions{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRestrictedAsync(b *testing.B) {
	cfg := bvc.Config{N: 6, F: 1, D: 1, Epsilon: 0.3, Lo: []float64{0}, Hi: []float64{1}}
	inputs := benchInputs(cfg.N, cfg.D, 4)
	opts := bvc.SimOptions{Delay: bvc.DelaySpec{Kind: bvc.DelayConstant, Mean: time.Millisecond}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts.Seed = int64(i)
		if _, err := bvc.SimulateRestrictedAsync(cfg, inputs, nil, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Geometry ablation benchmarks (Γ-point strategy ladder) ---

func BenchmarkSafePoint(b *testing.B) {
	pointsF1 := benchInputs(6, 2, 5) // f=1, |Y|=6, d=2
	pointsF2 := benchInputs(7, 2, 6) // f=2, |Y|=7, d=2
	cases := []struct {
		name   string
		points []bvc.Vector
		f      int
		method bvc.PointMethod
	}{
		{"radon_f1", pointsF1, 1, bvc.MethodRadon},
		{"lexmin_f1", pointsF1, 1, bvc.MethodLexMinLP},
		{"lexmin_f2", pointsF2, 2, bvc.MethodLexMinLP},
		{"search_f2", pointsF2, 2, bvc.MethodTverbergSearch},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bvc.SafePointWith(c.points, c.f, c.method); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkRadonPartition(b *testing.B) {
	for _, d := range []int{2, 4, 8, 16} {
		points := benchInputs(d+2, d, int64(d))
		b.Run(map[int]string{2: "d2", 4: "d4", 8: "d8", 16: "d16"}[d], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := bvc.RadonPartition(points); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkHullMembership(b *testing.B) {
	points := benchInputs(10, 3, 7)
	z := bvc.Vector{0.5, 0.5, 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bvc.InConvexHull(points, z); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSafeAreaEmptiness(b *testing.B) {
	// The Theorem-1 counterexample instance (always empty).
	basis := []bvc.Vector{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {0, 0, 0}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		empty, err := bvc.SafeAreaEmpty(basis, 1)
		if err != nil || !empty {
			b.Fatalf("empty=%v err=%v", empty, err)
		}
	}
}

func BenchmarkTverbergSearchHeptagon(b *testing.B) {
	points := make([]bvc.Vector, 7)
	for k := range points {
		a := 2 * math.Pi * float64(k) / 7
		points[k] = bvc.Vector{math.Cos(a), math.Sin(a)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, found, err := bvc.TverbergPartition(points, 3)
		if err != nil || !found {
			b.Fatalf("found=%v err=%v", found, err)
		}
	}
}
